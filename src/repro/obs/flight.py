"""The flight recorder: an append-only, crash-safe JSONL event stream.

A parallel enumeration is many processes, any of which can die mid-run
(OOM on a dense shard, a sanitizer violation, a killed pool).  The
in-memory :class:`~repro.obs.metrics.MetricsRegistry` of a dead worker
is gone; its flight log is not.  Each process appends one
schema-versioned JSON object per line and flushes after every write,
so whatever survives a crash is a valid prefix of the stream and the
parent (or a human with ``python -m repro.obs tail``) can replay it.

Event kinds (``repro.obs/flight-v1``):

==============  =====================================================
event           meaning
==============  =====================================================
``open``        stream header: schema tag, role (parent/worker),
                worker index, pid
``run_start``   one enumeration begins (workload parameters, shard)
``dispatch``    parent handed one shard to a worker
``phase``       one named engine phase and its measured seconds
``milestone``   every N-th emitted clique (progress breadcrumb)
``heartbeat``   throttled liveness sample: peak RSS plus caller gauges
``violation``   the run died (sanitizer violation or any exception)
``finish``      run completed: flat stats, full metrics snapshot,
                wall seconds
==============  =====================================================

Every record carries a monotonically increasing ``seq`` and a ``t_s``
timestamp relative to the recorder's own start (clocks of separate
processes are not synchronized; the parent's ``dispatch`` records are
the cross-process anchors).  :func:`replay_flight` tolerates a
truncated final line — the tail a crash cut mid-write — and
:func:`merge_flight_registries` rebuilds the cross-worker registry
deterministically, independent of worker completion order.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import peak_rss_bytes

#: Schema tag stamped into every stream's ``open`` record.
FLIGHT_SCHEMA = "repro.obs/flight-v1"

#: Minimum seconds between ``heartbeat`` records (unless forced).
DEFAULT_HEARTBEAT_EVERY = 0.25


class FlightRecorder:
    """Appends flight events to one JSONL file, flushing per record."""

    def __init__(
        self,
        path: str,
        role: str = "worker",
        worker: int = 0,
        clock=None,
        meta: Optional[Dict[str, object]] = None,
        heartbeat_every: float = DEFAULT_HEARTBEAT_EVERY,
    ) -> None:
        self.path = path
        self.role = role
        self.worker = worker
        self._clock = clock if clock is not None else time.monotonic
        self._t0 = self._clock()
        self._seq = 0
        self._heartbeat_every = heartbeat_every
        self._last_heartbeat: Optional[float] = None
        self._handle = open(path, "a", encoding="utf-8")
        self.record(
            "open",
            schema=FLIGHT_SCHEMA,
            role=role,
            worker=worker,
            pid=os.getpid(),
            **(meta or {}),
        )

    # -- the one writer ------------------------------------------------
    def record(self, event: str, **fields) -> None:
        """Append one event; the write is flushed before returning.

        Flushing per line is the crash-safety contract: a process that
        dies right after an event leaves that event on disk, and a
        process that dies *during* a write leaves at most one
        truncated final line, which :func:`replay_flight` drops.
        """
        entry: Dict[str, object] = {
            "event": event,
            "seq": self._seq,
            "t_s": round(self._clock() - self._t0, 6),
        }
        entry.update(fields)
        self._seq += 1
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._handle.flush()

    # -- typed events --------------------------------------------------
    def run_start(self, **fields) -> None:
        """One enumeration begins in this process."""
        self.record("run_start", **fields)

    def dispatch(self, shard: int, seeds: int, path: str) -> None:
        """Parent-side: one shard handed to a worker."""
        self.record("dispatch", shard=shard, seeds=seeds, path=path)

    def phase(self, name: str, seconds: float) -> None:
        """One named engine phase and its measured duration."""
        self.record("phase", name=name, seconds=round(seconds, 6))

    def milestone(self, outputs: int, **fields) -> None:
        """Emission progress breadcrumb (every N-th clique)."""
        self.record("milestone", outputs=outputs, **fields)

    def heartbeat(self, force: bool = False, **gauges) -> None:
        """Throttled liveness sample; always stamps peak RSS.

        Callers may invoke this per hook site (e.g. once per root of
        the outer loop); the recorder drops samples closer than
        ``heartbeat_every`` seconds to the previous one so hot callers
        cannot flood the stream.
        """
        now = self._clock()
        if (
            not force
            and self._last_heartbeat is not None
            and now - self._last_heartbeat < self._heartbeat_every
        ):
            return
        self._last_heartbeat = now
        self.record("heartbeat", peak_rss_bytes=peak_rss_bytes(), **gauges)

    def violation(self, kind: str, detail: str) -> None:
        """The run died: record why before the process goes away."""
        self.record("violation", kind=kind, detail=detail)

    def finish(self, **fields) -> None:
        """Run completed; carries stats/metrics for exact replay."""
        self.record("finish", peak_rss_bytes=peak_rss_bytes(), **fields)

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "FlightRecorder":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class FlightLog:
    """One replayed flight stream: parsed events plus derived views."""

    def __init__(
        self, path: str, events: List[Dict[str, object]], truncated: bool
    ) -> None:
        self.path = path
        self.events = events
        self.truncated = truncated
        header = events[0] if events else {}
        if header.get("event") != "open":
            header = {}
        self.schema = header.get("schema")
        self.role = header.get("role", "worker")
        self.worker = int(header.get("worker", 0) or 0)
        self.pid = header.get("pid")

    def first(self, event: str) -> Optional[Dict[str, object]]:
        """The first event of the given kind, or None."""
        for entry in self.events:
            if entry.get("event") == event:
                return entry
        return None

    def finish(self) -> Optional[Dict[str, object]]:
        """The ``finish`` record, or None for a crashed/partial log."""
        return self.first("finish")

    def wall_s(self) -> Optional[float]:
        """Recorded wall seconds of the run, or None."""
        finish = self.finish()
        if finish is None:
            return None
        wall = finish.get("wall_s")
        return float(wall) if wall is not None else None

    def registry(self) -> Optional[MetricsRegistry]:
        """Rebuild the run's metrics registry from the stream.

        Prefers the full ``metrics`` snapshot of the ``finish`` record
        (byte-identical to the live registry); falls back to folding
        the flat ``stats`` counters exactly like
        :meth:`repro.obs.observer.Observer.on_finish` does, so an
        obs-off flight log still replays into comparable counters.
        Returns None when the log has no ``finish`` record (crash).
        """
        finish = self.finish()
        if finish is None:
            return None
        metrics = finish.get("metrics")
        if metrics:
            return MetricsRegistry.from_dict(metrics)
        stats = finish.get("stats")
        if stats is None:
            return None
        registry = MetricsRegistry()
        flat = dict(stats)
        for name in sorted(flat):
            if name == "max_depth":
                registry.set_gauge("max_depth", flat[name])
            else:
                registry.inc(name, int(flat[name]))
        return registry


def replay_flight(path: str) -> FlightLog:
    """Parse one flight log, tolerating a truncated final line.

    A line that fails to parse marks the log ``truncated`` and ends
    the replay there — everything before it is a valid prefix (the
    per-line flush guarantees complete earlier lines), everything
    after it cannot be trusted.
    """
    events: List[Dict[str, object]] = []
    truncated = False
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped:
                continue
            try:
                entry = json.loads(stripped)
            except ValueError:
                truncated = True
                break
            if not isinstance(entry, dict):
                truncated = True
                break
            events.append(entry)
    return FlightLog(path, events, truncated)


def merge_flight_registries(logs: List[FlightLog]) -> MetricsRegistry:
    """One registry across workers, independent of completion order.

    Logs are merged in ``(worker, role, path)`` order and gauges merge
    by maximum, so shuffling the input (workers finishing in any
    order) cannot change a single byte of the result.  Logs without a
    ``finish`` record (crashed workers) contribute nothing.
    """
    merged = MetricsRegistry()
    ordered = sorted(
        logs, key=lambda log: (log.worker, str(log.role), log.path)
    )
    for log in ordered:
        registry = log.registry()
        if registry is not None:
            merged.merge(registry, gauges="max")
    return merged
