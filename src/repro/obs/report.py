"""Human-readable summaries of observation artifacts.

``python -m repro.obs report FILE`` accepts any artifact the stack
produces and picks the right renderer by sniffing the content:

* a **metrics document** (``repro.obs/metrics-v1``, written by
  :class:`~repro.obs.session.ObsSession`) — per-phase times, counters,
  gauges, and the per-depth histogram table with derived branching
  factors;
* a **bench trajectory** (``repro.obs/bench-v1``, e.g. the checked-in
  ``BENCH_pr4.json``) — one line per workload × backend plus the same
  per-run breakdowns;
* a **speedup document** (``kernel-backend-speedup``, e.g. the
  checked-in ``BENCH_pr6.json``) — per-workload backend timings and
  the headline speedup summary;
* a **flight log** (``repro.obs/flight-v1`` JSONL, see
  :mod:`repro.obs.flight`) — rendered as its event listing;
* a **JSONL trace** (Chrome trace events) — span totals and sampled
  instant counts.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import DEPTH_METRICS, MetricsRegistry
from repro.obs.tracer import read_jsonl

BENCH_SCHEMA = "repro.obs/bench-v1"

#: The ``bench`` tag of the kernel-speedup documents (``BENCH_pr6.json``
#: and friends) — pretty-printed JSON without the bench-v1 schema tag.
SPEEDUP_BENCH = "kernel-backend-speedup"


def load_artifact(path: str) -> Tuple[str, object]:
    """Read ``path`` and classify it.

    Returns ``("metrics", doc)``, ``("bench", doc)``,
    ``("speedup", doc)``, ``("flight", log)`` or ``("trace", events)``.
    """
    with open(path) as handle:
        text = handle.read()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            doc = json.loads(text)
        except ValueError:
            doc = None
        if isinstance(doc, dict):
            schema = doc.get("schema", "")
            if "event" in doc:
                # A one-record flight log parses as a single object.
                from repro.obs.flight import replay_flight

                return "flight", replay_flight(path)
            if schema == BENCH_SCHEMA:
                return "bench", doc
            if doc.get("bench") == SPEEDUP_BENCH or (
                "workloads" in doc and "runs" not in doc
            ):
                return "speedup", doc
            if "runs" in doc or "merged" in doc:
                return "metrics", doc
        if doc is None and _looks_like_flight(stripped):
            # Multi-line flight log: the single-object parse above
            # failed but each line is one event record.
            from repro.obs.flight import replay_flight

            return "flight", replay_flight(path)
    return "trace", read_jsonl(text)


def _looks_like_flight(text: str) -> bool:
    first_line = text.splitlines()[0] if text else ""
    try:
        entry = json.loads(first_line)
    except ValueError:
        return False
    return isinstance(entry, dict) and "event" in entry


def _fmt(value) -> str:
    if isinstance(value, float):
        return format(value, ".6g")
    return str(value)


def _table(headers: List[str], rows: List[List[str]]) -> List[str]:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip()
    ]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(
                cell.rjust(widths[i]) if i else cell.ljust(widths[i])
                for i, cell in enumerate(row)
            ).rstrip()
        )
    return lines


def _registry_sections(registry: MetricsRegistry) -> List[str]:
    lines: List[str] = []
    phases = registry.timers()
    if phases:
        total = sum(phases.values())
        rows = [
            [name, "%.6f" % seconds,
             "%4.1f%%" % (100.0 * seconds / total if total else 0.0)]
            for name, seconds in phases.items()
        ]
        lines.append("phases:")
        lines.extend("  " + t for t in _table(
            ["phase", "seconds", "share"], rows
        ))
    counters = registry.counters()
    if counters:
        lines.append("counters:")
        lines.extend(
            "  %s = %s" % (name, _fmt(value))
            for name, value in counters.items()
        )
    gauges = {
        name: registry.gauge(name)
        for name in sorted(registry.as_dict()["gauges"])
    }
    if gauges:
        lines.append("gauges:")
        lines.extend(
            "  %s = %s" % (name, _fmt(value))
            for name, value in gauges.items()
        )
    depth_rows = _depth_rows(registry)
    if depth_rows:
        lines.append("per-depth:")
        lines.extend("  " + t for t in _table(
            ["depth", "nodes", "branch", "emits",
             "prune_kpivot", "prune_mpivot", "prune_size"],
            depth_rows,
        ))
    sizes = registry.depth_histogram("clique_size")
    if sizes:
        lines.append("clique sizes:")
        lines.extend(
            "  size %d: %d" % (size, sizes[size])
            for size in sorted(sizes)
        )
    return lines


def _depth_rows(registry: MetricsRegistry) -> List[List[str]]:
    hists = {name: registry.depth_histogram(name) for name in DEPTH_METRICS}
    depths = sorted({d for hist in hists.values() for d in hist})
    if not depths:
        return []
    branching = registry.branching_factors()
    rows = []
    for depth in depths:
        factor = branching.get(depth)
        rows.append([
            str(depth),
            str(hists["nodes"].get(depth, 0)),
            "%.3f" % factor if factor is not None else "-",
            str(hists["emits"].get(depth, 0)),
            str(hists["prune_kpivot"].get(depth, 0)),
            str(hists["prune_mpivot"].get(depth, 0)),
            str(hists["prune_size"].get(depth, 0)),
        ])
    return rows


def render_metrics(doc: Dict[str, object]) -> str:
    """Summary of a ``repro.obs/metrics-v1`` session document."""
    lines: List[str] = []
    env = doc.get("env")
    if env:
        lines.append(
            "env: " + ", ".join(
                "%s=%s" % (key, env[key]) for key in sorted(env)
            )
        )
    runs = doc.get("runs", [])
    for run in runs:
        lines.append(
            "run %s [%s backend, obs=%s]"
            % (run.get("index"), run.get("backend"), run.get("level"))
        )
        registry = MetricsRegistry.from_dict(run.get("metrics", {}))
        lines.extend("  " + t for t in _registry_sections(registry))
        lines.append("")
    merged = doc.get("merged")
    if merged is not None and len(runs) != 1:
        lines.append("merged (%d runs)" % len(runs))
        registry = MetricsRegistry.from_dict(merged)
        lines.extend("  " + t for t in _registry_sections(registry))
    return "\n".join(lines).rstrip() + "\n"


def render_bench(doc: Dict[str, object], verbose: bool = False) -> str:
    """Summary of a ``repro.obs/bench-v1`` trajectory document."""
    lines: List[str] = []
    meta = doc.get("meta", {})
    if meta:
        lines.append(
            "bench trajectory: "
            + ", ".join(
                "%s=%s" % (k, meta[k]) for k in sorted(meta)
            )
        )
    rows = []
    for run in doc.get("runs", []):
        stats = run.get("stats", {})
        rows.append([
            "%s/%s" % (run.get("workload"), run.get("backend")),
            _fmt(run.get("seconds")),
            str(run.get("num_cliques")),
            str(stats.get("calls", "-")),
            str(stats.get("expansions", "-")),
        ])
    if rows:
        lines.extend(_table(
            ["run", "seconds", "cliques", "calls", "expansions"], rows
        ))
    if verbose:
        for run in doc.get("runs", []):
            metrics = run.get("metrics")
            if not metrics:
                continue
            lines.append("")
            lines.append(
                "%s/%s:" % (run.get("workload"), run.get("backend"))
            )
            registry = MetricsRegistry.from_dict(metrics)
            lines.extend("  " + t for t in _registry_sections(registry))
    return "\n".join(lines).rstrip() + "\n"


def render_speedup(doc: Dict[str, object]) -> str:
    """Summary of a ``kernel-backend-speedup`` document."""
    lines: List[str] = []
    header = ["speedup bench: %s" % doc.get("bench", "?")]
    if doc.get("pr") is not None:
        header.append("pr=%s" % doc.get("pr"))
    env = doc.get("env") or {}
    for key in sorted(env):
        header.append("%s=%s" % (key, env[key]))
    lines.append(", ".join(header))
    rows = []
    for record in doc.get("workloads", []):
        best = record.get("best_s", {})
        rows.append([
            str(record.get("name")),
            str(record.get("outputs", "-")),
            _fmt(best.get("dict", "-")),
            _fmt(best.get("kernel", "-")),
            _fmt(record.get("speedup_best", "-")),
            _fmt(record.get("speedup_median", "-")),
        ])
    if rows:
        lines.extend(_table(
            ["workload", "cliques", "dict_best_s", "kernel_best_s",
             "speedup_best", "speedup_median"],
            rows,
        ))
    summary = doc.get("summary", {})
    if summary:
        lines.append(
            "summary: best %sx (target %sx, met=%s, parity_ok=%s)"
            % (
                summary.get("best_speedup", "-"),
                summary.get("speedup_target", "-"),
                summary.get("target_met", "-"),
                summary.get("parity_ok", "-"),
            )
        )
    return "\n".join(lines) + "\n"


def render_trace(events: List[Dict[str, object]]) -> str:
    """Summary of a Chrome-trace-event JSONL stream."""
    span_dur: Dict[Tuple[object, str], int] = {}
    span_count: Dict[Tuple[object, str], int] = {}
    instants: Dict[Tuple[object, str], int] = {}
    lanes: Dict[object, str] = {}
    for event in events:
        phase = event.get("ph")
        tid = event.get("tid")
        name = str(event.get("name", ""))
        if phase == "X":
            key = (tid, name)
            span_dur[key] = span_dur.get(key, 0) + int(event.get("dur", 0))
            span_count[key] = span_count.get(key, 0) + 1
        elif phase == "i":
            key = (tid, name)
            instants[key] = instants.get(key, 0) + 1
        elif phase == "M" and name == "thread_name":
            lanes[tid] = str(event.get("args", {}).get("name", ""))
    lines = ["trace: %d events, %d lanes" % (len(events), len(lanes) or 1)]
    if span_dur:
        rows = [
            [
                "%s%s" % (name, _lane_suffix(lanes, tid)),
                str(span_count[(tid, name)]),
                "%.6f" % (span_dur[(tid, name)] / 1e6),
            ]
            for tid, name in sorted(
                span_dur, key=lambda key: (str(key[0]), key[1])
            )
        ]
        lines.append("spans:")
        lines.extend("  " + t for t in _table(
            ["span", "count", "seconds"], rows
        ))
    if instants:
        lines.append("sampled instants:")
        lines.extend(
            "  %s%s: %d"
            % (name, _lane_suffix(lanes, tid), instants[(tid, name)])
            for tid, name in sorted(
                instants, key=lambda key: (str(key[0]), key[1])
            )
        )
    return "\n".join(lines) + "\n"


def _lane_suffix(lanes: Dict[object, str], tid) -> str:
    label = lanes.get(tid)
    return " [%s]" % label if label else ""


def render_path(path: str, verbose: bool = False) -> str:
    """Load ``path`` and render the matching summary."""
    kind, payload = load_artifact(path)
    if kind == "metrics":
        return render_metrics(payload)
    if kind == "bench":
        return render_bench(payload, verbose=verbose)
    if kind == "speedup":
        return render_speedup(payload)
    if kind == "flight":
        # Imported lazily in both directions (fleet borrows _table).
        from repro.obs.fleet import render_tail

        return render_tail(payload)
    return render_trace(payload)
