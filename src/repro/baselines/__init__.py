"""Case-study baselines: UKCore, UKTruss, USCAN-style SCAN, PCluster."""

from repro.baselines.ukcore import (
    core_community,
    eta_core_decomposition,
    eta_degree,
    k_eta_core,
    k_eta_core_vertices,
    tail_distribution,
)
from repro.baselines.uktruss import (
    edge_support_probability,
    k_gamma_truss,
    truss_community,
    truss_decomposition,
)
from repro.baselines.uscan import structural_similarity, uscan
from repro.baselines.pcluster import pkwik_cluster

__all__ = [
    "core_community",
    "eta_core_decomposition",
    "eta_degree",
    "k_eta_core",
    "k_eta_core_vertices",
    "tail_distribution",
    "edge_support_probability",
    "k_gamma_truss",
    "truss_community",
    "truss_decomposition",
    "structural_similarity",
    "uscan",
    "pkwik_cluster",
]
