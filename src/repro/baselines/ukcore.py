"""``UKCore`` — (k, η)-cores of uncertain graphs (Bonchi et al., KDD'14).

The η-degree of a vertex ``v`` is the largest ``k`` such that the
probability that at least ``k`` of ``v``'s incident edges exist is at
least ``η``; the (k, η)-core is the maximal subgraph in which every
vertex has η-degree >= ``k`` within the subgraph.

The tail probability of a sum of independent Bernoulli edges is
computed by the standard O(d²) convolution DP, and the core is obtained
by peeling, recomputing η-degrees of the affected neighbors — the exact
semantics of the original paper, at the graph scales this repo uses.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.exceptions import ParameterError
from repro.uncertain.graph import UncertainGraph, Vertex


def tail_distribution(probabilities: Sequence[float]) -> List[float]:
    """Return ``tail[k] = Pr[at least k successes]`` for independent
    Bernoulli trials with the given probabilities (length ``d + 1``)."""
    dist = [1.0]
    for p in probabilities:
        nxt = [0.0] * (len(dist) + 1)
        for count, mass in enumerate(dist):
            nxt[count] += mass * (1 - p)
            nxt[count + 1] += mass * p
        dist = nxt
    tail = [0.0] * (len(dist) + 1)
    for k in range(len(dist) - 1, -1, -1):
        tail[k] = tail[k + 1] + dist[k]
    return tail[:-1]


def eta_degree(graph: UncertainGraph, v: Vertex, eta) -> int:
    """η-degree of ``v``: max k with ``Pr[deg(v) >= k] >= eta``."""
    _check_eta(eta)
    tail = tail_distribution(list(graph.neighbors(v).values()))
    degree = 0
    for k in range(1, len(tail)):
        if tail[k] >= eta:
            degree = k
        else:
            break
    return degree


def k_eta_core(graph: UncertainGraph, k: int, eta) -> UncertainGraph:
    """Return the maximal (k, η)-core as an induced subgraph."""
    return graph.subgraph(k_eta_core_vertices(graph, k, eta))


def k_eta_core_vertices(graph: UncertainGraph, k: int, eta) -> Set[Vertex]:
    """Vertex set of the maximal (k, η)-core (peeling)."""
    if k < 0:
        raise ParameterError(f"k must be non-negative, got {k}")
    _check_eta(eta)
    alive: Set[Vertex] = set(graph.vertices())
    degrees: Dict[Vertex, int] = {}

    def current_eta_degree(v: Vertex) -> int:
        probs = [p for u, p in graph.neighbors(v).items() if u in alive]
        tail = tail_distribution(probs)
        degree = 0
        for kk in range(1, len(tail)):
            if tail[kk] >= eta:
                degree = kk
            else:
                break
        return degree

    for v in alive:
        degrees[v] = current_eta_degree(v)
    # Canonical queue order: peeling is confluent (the core is unique),
    # but seeding in sorted order keeps intermediate states — and any
    # instrumentation hung off them — reproducible too.
    queue = sorted((v for v in alive if degrees[v] < k), key=repr)
    while queue:
        v = queue.pop()
        if v not in alive:
            continue
        alive.discard(v)
        # repro-lint: ok REP001 insertion-ordered dict view; peeling is confluent
        for u in graph.neighbors(v):
            if u in alive and degrees[u] >= k:
                degrees[u] = current_eta_degree(u)
                if degrees[u] < k:
                    queue.append(u)
    return alive


def eta_core_decomposition(graph: UncertainGraph, eta) -> Dict[Vertex, int]:
    """(k, η)-core number of every vertex (Bonchi et al.'s decomposition).

    The core number of ``v`` is the largest ``k`` such that ``v``
    belongs to the (k, η)-core; computed by minimum-η-degree peeling,
    mirroring the classic core decomposition.
    """
    _check_eta(eta)
    alive: Set[Vertex] = set(graph.vertices())

    def current(v: Vertex) -> int:
        probs = [p for u, p in graph.neighbors(v).items() if u in alive]
        tail = tail_distribution(probs)
        degree = 0
        for kk in range(1, len(tail)):
            if tail[kk] >= eta:
                degree = kk
            else:
                break
        return degree

    degrees = {v: current(v) for v in alive}
    shell: Dict[Vertex, int] = {}
    level = 0
    while alive:
        v = min(alive, key=lambda w: (degrees[w], repr(w)))
        level = max(level, degrees[v])
        shell[v] = level
        alive.discard(v)
        for u in graph.neighbors(v):
            if u in alive:
                degrees[u] = min(degrees[u], current(u))
    return shell


def core_community(graph: UncertainGraph, query: Vertex, k: int, eta):
    """Connected component of ``query`` inside the (k, η)-core.

    Returns the vertex set (empty if the query is peeled away) — the
    community UKCore reports in the paper's case studies.
    """
    core = k_eta_core(graph, k, eta)
    if query not in core:
        return frozenset()
    for component in core.connected_components():
        if query in component:
            return frozenset(component)
    return frozenset()  # pragma: no cover - query always in a component


def _check_eta(eta) -> None:
    if not 0 <= eta <= 1:
        raise ParameterError(f"eta must lie in [0, 1], got {eta!r}")
