"""``PCluster`` — pKwikCluster for probabilistic graphs (Kollios et
al., TKDE'13).

Kollios et al. reduce clustering of a probabilistic graph to
correlation clustering under expected edit distance and solve it with
the 5-approximate pKwikCluster algorithm: repeatedly pick a random
unclustered pivot and absorb all unclustered vertices connected to it
with probability at least 1/2 (the expected-cost majority threshold).
"""

from __future__ import annotations

import random
from typing import List, Set

from repro.exceptions import ParameterError
from repro.uncertain.graph import UncertainGraph, Vertex


def pkwik_cluster(
    graph: UncertainGraph, threshold: float = 0.5, seed: int = 0
) -> List[Set[Vertex]]:
    """Cluster ``graph`` with pKwikCluster.

    Parameters
    ----------
    threshold:
        Edge-probability majority threshold (1/2 in the original
        analysis).
    seed:
        RNG seed for the pivot order (the algorithm is randomized).

    Returns
    -------
    list of vertex sets (singletons included — they matter for the
    expected-edit-distance objective, though the Table-2 evaluation
    only scores within-cluster pairs).
    """
    if not 0 < threshold <= 1:
        raise ParameterError(f"threshold must lie in (0, 1], got {threshold!r}")
    rng = random.Random(seed)
    order = graph.vertices()
    rng.shuffle(order)
    unclustered = set(order)
    clusters: List[Set[Vertex]] = []
    for pivot in order:
        if pivot not in unclustered:
            continue
        members = {pivot}
        for u, p in graph.neighbors(pivot).items():
            if u in unclustered and p >= threshold:
                members.add(u)
        unclustered -= members
        clusters.append(members)
    return clusters
