"""``USCAN``-style structural clustering of uncertain graphs.

Qiu et al. (TKDE'19) extend SCAN to probabilistic graphs with a
*reliable structural similarity*; this module implements the same
clustering *contract* — ε/μ structural clustering with cores, borders
and outliers — using the expected-neighborhood cosine similarity::

    σ(u, v) = (p_uv + Σ_w p_uw * p_vw) /
              sqrt((1 + Σ_w p_uw) * (1 + Σ_w p_vw))

which is the natural probabilistic relaxation of SCAN's common-
neighborhood cosine (the deterministic formula is recovered when all
probabilities are 1).  The original reliable similarity (a tail
probability over sampled worlds) refines the same quantity; for the
Table-2 comparison, what matters is that the method produces SCAN-style
density clusters, which over-merge small protein complexes — and that
behaviour is faithfully reproduced.  The substitution is recorded in
DESIGN.md.
"""

from __future__ import annotations

import math
from typing import Dict, List, Set

from repro.exceptions import ParameterError
from repro.uncertain.graph import UncertainGraph, Vertex


def structural_similarity(graph: UncertainGraph, u: Vertex, v: Vertex) -> float:
    """Expected-neighborhood cosine similarity of adjacent vertices."""
    nu, nv = graph.neighbors(u), graph.neighbors(v)
    # Closed neighborhoods: u itself lies in Γ(u) surely and in Γ(v)
    # with probability p_uv (and symmetrically for v), hence the 2·p_uv.
    shared = 2.0 * float(nu.get(v, 0))
    small, large = (nu, nv) if len(nu) <= len(nv) else (nv, nu)
    for w, p in small.items():
        if w == u or w == v:
            continue
        q = large.get(w)
        if q is not None:
            shared += float(p) * float(q)
    weight_u = 1.0 + sum(float(p) for p in nu.values())
    weight_v = 1.0 + sum(float(p) for p in nv.values())
    return shared / math.sqrt(weight_u * weight_v)


def uscan(
    graph: UncertainGraph, epsilon: float = 0.5, mu: int = 3
) -> List[Set[Vertex]]:
    """ε/μ structural clustering; returns the clusters (cores+borders).

    A vertex is a *core* when at least ``mu`` of its neighbors
    (including itself, per SCAN convention) are ε-similar; clusters are
    grown from cores through ε-similar neighbor links; border vertices
    attach to an adjacent cluster; everything else is an outlier (not
    returned).
    """
    if not 0 < epsilon <= 1:
        raise ParameterError(f"epsilon must lie in (0, 1], got {epsilon!r}")
    if mu < 1:
        raise ParameterError(f"mu must be positive, got {mu}")
    similar: Dict[Vertex, Set[Vertex]] = {}
    for v in graph:
        eps_nbrs = {
            u
            for u in graph.neighbors(v)
            if structural_similarity(graph, u, v) >= epsilon
        }
        eps_nbrs.add(v)
        similar[v] = eps_nbrs
    cores = {v for v in graph if len(similar[v]) >= mu}
    cluster_of: Dict[Vertex, int] = {}
    clusters: List[Set[Vertex]] = []
    for seed in sorted(cores, key=repr):
        if seed in cluster_of:
            continue
        cluster_id = len(clusters)
        members: Set[Vertex] = set()
        stack = [seed]
        cluster_of[seed] = cluster_id
        while stack:
            v = stack.pop()
            members.add(v)
            # Sorted expansion keeps the DFS (and any stats derived
            # from it) canonical; the member set itself is confluent.
            for u in sorted(similar[v], key=repr):
                if u in cores and u not in cluster_of:
                    cluster_of[u] = cluster_id
                    stack.append(u)
        clusters.append(members)
    # Borders: non-core vertices ε-similar to some clustered core.
    # The first ε-similar clustered core wins, so the candidate order
    # must be canonical — iterating the raw set hands the choice to
    # PYTHONHASHSEED.
    for v in sorted(set(graph.vertices()) - cores, key=repr):
        for u in sorted(similar[v], key=repr):
            if u in cluster_of and u in cores:
                clusters[cluster_of[u]].add(v)
                break
    return [c for c in clusters if len(c) >= 2]
