"""``UKTruss`` — local (k, γ)-trusses of uncertain graphs (Huang et
al., SIGMOD'16).

An edge ``e = (u, v)`` has *support probability at level s*::

    Pr[e exists and at least s triangles through e exist]
      = p_e * Pr[ Σ_w Bernoulli(p_uw * p_vw) >= s ]

(the per-apex triangle events are independent given ``e``, because they
use disjoint side edges).  The local (k, γ)-truss is the maximal
subgraph in which every edge has support probability at level ``k - 2``
at least ``γ``; it is computed by edge peeling with DP-based
recomputation, mirroring the semantics of the original paper.
"""

from __future__ import annotations

from typing import Set

from repro.exceptions import ParameterError
from repro.baselines.ukcore import tail_distribution
from repro.uncertain.graph import Edge, UncertainGraph, Vertex, normalize_edge


def edge_support_probability(
    graph: UncertainGraph, u: Vertex, v: Vertex, support: int
) -> float:
    """``Pr[(u, v) exists and >= support triangles through it exist]``."""
    if support < 0:
        raise ParameterError(f"support must be non-negative, got {support}")
    p_e = graph.probability(u, v)
    if not p_e:
        raise ParameterError(f"({u!r}, {v!r}) is not an edge")
    nu, nv = graph.neighbors(u), graph.neighbors(v)
    if len(nu) > len(nv):
        nu, nv = nv, nu
    triangle_probs = [nu[w] * nv[w] for w in nu if w in nv]
    if support == 0:
        return float(p_e)
    if support > len(triangle_probs):
        return 0.0
    tail = tail_distribution(triangle_probs)
    return float(p_e) * tail[support]


def k_gamma_truss(graph: UncertainGraph, k: int, gamma) -> UncertainGraph:
    """Return the maximal local (k, γ)-truss (edge-induced subgraph)."""
    if k < 2:
        raise ParameterError(f"truss order k must be >= 2, got {k}")
    if not 0 <= gamma <= 1:
        raise ParameterError(f"gamma must lie in [0, 1], got {gamma!r}")
    support = k - 2
    work = graph.copy()
    alive: Set[Edge] = {normalize_edge(u, v) for u, v, _p in work.edges()}

    def prob(e: Edge) -> float:
        return edge_support_probability(work, e[0], e[1], support)

    # Canonical queue order: peeling is confluent (the truss is unique),
    # but a sorted seed keeps the removal sequence reproducible.
    queue = sorted((e for e in alive if prob(e) < gamma), key=repr)
    removed: Set[Edge] = set()
    while queue:
        e = queue.pop()
        if e in removed:
            continue
        removed.add(e)
        alive.discard(e)
        u, v = e
        # Removing e kills the triangles through it: re-check side edges.
        affected = []
        nu, nv = work.neighbors(u), work.neighbors(v)
        for w in [w for w in nu if w in nv]:
            affected.append(normalize_edge(u, w))
            affected.append(normalize_edge(v, w))
        work.remove_edge(u, v)
        for side in affected:
            if side in alive and prob(side) < gamma:
                queue.append(side)
    return graph.edge_subgraph(alive)


def truss_decomposition(graph: UncertainGraph, gamma) -> dict:
    """γ-truss number of every edge (Huang et al.'s decomposition).

    The truss number of ``e`` is the largest ``k`` such that the local
    (k, γ)-truss contains ``e``; computed by minimum-support-first edge
    peeling, analogous to the deterministic truss decomposition.
    Returns ``{edge: k}`` with ``k >= 2`` for every surviving edge.
    """
    import heapq

    if not 0 <= gamma <= 1:
        raise ParameterError(f"gamma must lie in [0, 1], got {gamma!r}")
    work = graph.copy()
    alive: Set[Edge] = {normalize_edge(u, v) for u, v, _p in work.edges()}

    def max_support(e: Edge) -> int:
        # Largest s with support probability at level s >= gamma.
        s = 0
        while edge_support_probability(work, e[0], e[1], s + 1) >= gamma:
            s += 1
        return s

    level_of = {e: max_support(e) for e in alive}
    heap = [(s, repr(e), e) for e, s in level_of.items()]
    heapq.heapify(heap)
    result: dict = {}
    level = 0
    while heap:
        s, _tie, e = heapq.heappop(heap)
        if e not in alive or s != level_of[e]:
            continue
        alive.discard(e)
        level = max(level, s)
        result[e] = level + 2  # truss order k = support + 2
        u, v = e
        nu, nv = work.neighbors(u), work.neighbors(v)
        affected = [
            normalize_edge(a, w)
            for w in [w for w in nu if w in nv]
            for a in (u, v)
        ]
        work.remove_edge(u, v)
        for side in affected:
            if side in alive:
                new_s = max_support(side)
                if new_s != level_of[side]:
                    level_of[side] = new_s
                    heapq.heappush(heap, (new_s, repr(side), side))
    return result


def truss_community(graph: UncertainGraph, query: Vertex, k: int, gamma):
    """Connected component of ``query`` in the local (k, γ)-truss."""
    truss = k_gamma_truss(graph, k, gamma)
    if query not in truss:
        return frozenset()
    for component in truss.connected_components():
        if query in component:
            return frozenset(component)
    return frozenset()  # pragma: no cover - query always in a component
