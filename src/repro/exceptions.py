"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by the library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause without swallowing unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GraphError(ReproError):
    """Raised for structurally invalid graph operations.

    Examples include adding a self-loop, querying a vertex that does not
    exist, or removing an edge that was never inserted.
    """


class InvalidProbabilityError(GraphError):
    """Raised when an edge probability falls outside the interval (0, 1]."""


class ParameterError(ReproError):
    """Raised when an algorithm parameter is out of its documented domain.

    Examples include a non-positive size threshold ``k`` or a probability
    threshold ``eta`` outside [0, 1].
    """


class DatasetError(ReproError):
    """Raised when a dataset generator or loader receives bad input."""


class SanitizerViolation(ReproError):
    """Raised by the runtime sanitizer when an enumeration invariant fails.

    Carries a :class:`repro.sanitize.report.ViolationReport` (as
    ``report``) naming the failed check (S1–S5), the recursion path at
    the violation site, and enough context to replay the offending
    subtree (see :func:`repro.sanitize.replay`).  ``report`` is typed
    loosely here so the exception hierarchy stays import-cycle-free.
    """

    def __init__(self, message: str, report: object = None):
        super().__init__(message)
        self.report = report


class KernelBackendError(ReproError):
    """Raised when a graph cannot be compiled for the kernel backend.

    The bitset kernel requires float (or int) edge probabilities and a
    float-comparable ``eta``; exact :class:`~fractions.Fraction` runs
    must use the dict backend.  The enumerator catches this error and
    falls back transparently, so it only surfaces to callers that build
    a :class:`repro.kernel.CompactGraph` directly.
    """
