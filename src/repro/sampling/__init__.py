"""Monte-Carlo estimation substrate: naive, vectorized, stratified,
and the s-t reliability / connectivity queries built on it."""

from repro.sampling.estimators import (
    Estimate,
    estimate,
    estimate_clique_indicator,
    sample_edge_matrix,
)
from repro.sampling.stratified import stratified_estimate
from repro.sampling.reliability import (
    clique_reliability,
    exact_reliability,
    reliability,
)

__all__ = [
    "Estimate",
    "estimate",
    "estimate_clique_indicator",
    "sample_edge_matrix",
    "stratified_estimate",
    "reliability",
    "exact_reliability",
    "clique_reliability",
]
