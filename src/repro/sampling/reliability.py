"""s-t reliability and related connectivity queries.

The *s-t reliability* of an uncertain graph is the probability that a
path between ``s`` and ``t`` exists in a sampled world — the benchmark
query of the uncertain-graph literature (Ke, Khan & Quan, VLDB 2019,
cited by the paper).  Reliability is #P-hard exactly, so the practical
tools are the estimators of this package:

* :func:`reliability` — naive or stratified Monte Carlo;
* :func:`exact_reliability` — brute-force world enumeration for
  test-sized graphs (the oracle);
* :func:`clique_reliability` — the probability that a vertex set is
  *connected* in a world (a relaxation of the clique probability used
  to sanity-check reported communities).
"""

from __future__ import annotations

from typing import Iterable

from repro.exceptions import ParameterError
from repro.deterministic.graph import Graph, Vertex
from repro.sampling.estimators import Estimate, estimate
from repro.sampling.stratified import stratified_estimate
from repro.uncertain.graph import UncertainGraph
from repro.uncertain.possible_worlds import enumerate_worlds


def _connected(world: Graph, s: Vertex, t: Vertex) -> bool:
    if s not in world or t not in world:
        return False
    if s == t:
        return True
    seen = {s}
    stack = [s]
    while stack:
        v = stack.pop()
        # repro-lint: ok REP001 reachability is a boolean; visit order cannot change it
        for u in world.neighbors(v):
            if u == t:
                return True
            if u not in seen:
                seen.add(u)
                stack.append(u)
    return False


def _all_connected(world: Graph, members) -> bool:
    members = list(members)
    if not members:
        return True
    root = members[0]
    return all(_connected(world, root, v) for v in members[1:])


def reliability(
    graph: UncertainGraph,
    s: Vertex,
    t: Vertex,
    samples: int = 1000,
    seed: int = 0,
    stratified: bool = False,
) -> Estimate:
    """Estimate ``Pr[s and t connected in a sampled world]``."""
    if s not in graph or t not in graph:
        raise ParameterError(f"both {s!r} and {t!r} must be vertices")

    def query(world: Graph) -> float:
        return 1.0 if _connected(world, s, t) else 0.0

    if stratified:
        return stratified_estimate(graph, query, samples=samples, seed=seed)
    return estimate(graph, query, samples=samples, seed=seed)


def exact_reliability(graph: UncertainGraph, s: Vertex, t: Vertex) -> float:
    """Exact s-t reliability via world enumeration (test oracle)."""
    if s not in graph or t not in graph:
        raise ParameterError(f"both {s!r} and {t!r} must be vertices")
    total = 0.0
    for world, p in enumerate_worlds(graph):
        if _connected(world, s, t):
            total += float(p)
    return total


def clique_reliability(
    graph: UncertainGraph,
    members: Iterable[Vertex],
    samples: int = 1000,
    seed: int = 0,
) -> Estimate:
    """Estimate ``Pr[members mutually connected in a sampled world]``.

    For a clique this is at least the clique probability (connectivity
    is weaker than completeness) — a useful robustness score for
    communities reported by the enumerators.
    """
    member_list = list(members)
    for v in member_list:
        if v not in graph:
            raise ParameterError(f"{v!r} is not a vertex")

    def query(world: Graph) -> float:
        return 1.0 if _all_connected(world, member_list) else 0.0

    return estimate(graph, query, samples=samples, seed=seed)
