"""Monte-Carlo estimation of possible-world queries.

Many uncertain-graph quantities have no closed form (s-t reliability,
expected number of maximal cliques, probability that a set is maximal
*and* largest, ...).  This module provides the estimation substrate the
uncertain-graph literature builds on:

* :func:`estimate` — plain Monte Carlo over sampled worlds with a
  Hoeffding or normal-approximation confidence interval;
* :func:`sample_edge_matrix` — vectorized batch world sampling
  (``numpy`` bool matrix, one row per world);
* :class:`Estimate` — value + confidence interval container.

The stratified estimator of Li et al. (TKDE 2016), cited by the paper
as its sampling workhorse, lives in
:mod:`repro.sampling.stratified`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

from repro.exceptions import ParameterError
from repro.deterministic.graph import Graph
from repro.uncertain.graph import UncertainGraph
from repro.uncertain.possible_worlds import sample_world

WorldPredicate = Callable[[Graph], bool]
WorldValue = Callable[[Graph], float]


@dataclass(frozen=True)
class Estimate:
    """A Monte-Carlo estimate with a two-sided confidence interval."""

    value: float
    low: float
    high: float
    samples: int

    @property
    def half_width(self) -> float:
        return (self.high - self.low) / 2

    def __contains__(self, truth: float) -> bool:
        return self.low <= truth <= self.high


def estimate(
    graph: UncertainGraph,
    query: WorldValue,
    samples: int = 1000,
    seed: int = 0,
    confidence: float = 0.95,
    bounded: Tuple[float, float] = (0.0, 1.0),
) -> Estimate:
    """Estimate ``E[query(world)]`` by direct world sampling.

    ``query`` maps a sampled deterministic world to a number inside
    ``bounded`` (use an indicator for probabilities).  The interval is
    a Hoeffding bound — distribution-free, valid for any bounded query.
    """
    _check(samples, confidence)
    lo, hi = bounded
    if not lo < hi:
        raise ParameterError(f"bounded must be a nonempty interval, got {bounded}")
    rng = random.Random(seed)
    total = 0.0
    for _ in range(samples):
        value = float(query(sample_world(graph, rng)))
        if not lo <= value <= hi:
            raise ParameterError(
                f"query returned {value} outside the declared bounds {bounded}"
            )
        total += value
    mean = total / samples
    half = (hi - lo) * math.sqrt(
        math.log(2.0 / (1.0 - confidence)) / (2.0 * samples)
    )
    return Estimate(
        value=mean,
        low=max(lo, mean - half),
        high=min(hi, mean + half),
        samples=samples,
    )


def sample_edge_matrix(
    graph: UncertainGraph, samples: int, seed: int = 0
) -> Tuple[np.ndarray, List[tuple]]:
    """Sample ``samples`` worlds at once as a bool matrix.

    Returns ``(matrix, edge_list)`` where ``matrix[i, j]`` says whether
    edge ``edge_list[j]`` exists in world ``i``.  Useful for evaluating
    many world queries vectorized, ~100x faster than per-world loops.
    """
    if samples <= 0:
        raise ParameterError(f"samples must be positive, got {samples}")
    edges = [(u, v) for u, v, _p in graph.edges()]
    probs = np.array([float(graph.probability(u, v)) for u, v in edges])
    rng = np.random.default_rng(seed)
    matrix = rng.random((samples, len(edges))) < probs[None, :]
    return matrix, edges


def estimate_clique_indicator(
    graph: UncertainGraph, members, samples: int = 1000, seed: int = 0
) -> Estimate:
    """Vectorized estimate of ``Pr[members is a clique]``.

    Mostly a demonstration of :func:`sample_edge_matrix` (the exact
    value is Eq. 2); also used as the convergence fixture in tests.
    """
    member_set = set(members)
    pairs_needed = len(member_set) * (len(member_set) - 1) // 2
    matrix, edges = sample_edge_matrix(graph, samples, seed)
    inside = [
        j for j, (u, v) in enumerate(edges) if u in member_set and v in member_set
    ]
    if len(inside) < pairs_needed:
        hits = np.zeros(samples, dtype=bool)
    else:
        hits = matrix[:, inside].all(axis=1)
    mean = float(hits.mean()) if samples else 0.0
    half = math.sqrt(math.log(2 / 0.05) / (2 * samples))
    return Estimate(
        value=mean,
        low=max(0.0, mean - half),
        high=min(1.0, mean + half),
        samples=samples,
    )


def _check(samples: int, confidence: float) -> None:
    if samples <= 0:
        raise ParameterError(f"samples must be positive, got {samples}")
    if not 0 < confidence < 1:
        raise ParameterError(
            f"confidence must lie in (0, 1), got {confidence}"
        )
