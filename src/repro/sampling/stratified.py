"""Recursive stratified sampling (Li, Yu, Mao & Jin, TKDE 2016).

Naive Monte Carlo wastes samples on worlds whose outcome is already
determined by a few high-impact edges.  Stratified sampling picks ``r``
*pivot edges*, enumerates all ``2^r`` existence patterns (strata),
weighs each stratum by its exact probability, and spends the sample
budget inside strata proportionally.  Because the strata partition the
world space, the estimator is unbiased, and the within-stratum variance
is never larger than the population variance (law of total variance),
so for a fixed budget it is at least as accurate as naive sampling.

The recursion of the original paper (re-stratifying within large
strata) is realized here by choosing ``r`` pivots up front — equivalent
to an ``r``-level recursion with one pivot per level — which keeps the
implementation transparent while exercising the same statistical idea.
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, Optional, Sequence, Tuple

from repro.exceptions import ParameterError
from repro.deterministic.graph import Graph
from repro.sampling.estimators import Estimate
from repro.uncertain.graph import UncertainGraph

WorldValue = Callable[[Graph], float]


def stratified_estimate(
    graph: UncertainGraph,
    query: WorldValue,
    samples: int = 1000,
    pivot_edges: int = 3,
    seed: int = 0,
    pivots: Optional[Sequence[Tuple]] = None,
) -> Estimate:
    """Stratified estimate of ``E[query(world)]``.

    Parameters
    ----------
    pivot_edges:
        Number of pivot edges (``2^pivot_edges`` strata).  Ignored when
        explicit ``pivots`` are given.
    pivots:
        Optional explicit pivot edges ``[(u, v), ...]``.  By default
        the edges with probability closest to 1/2 are chosen — they
        carry the most outcome entropy, which is where stratification
        pays the most.
    """
    if samples <= 0:
        raise ParameterError(f"samples must be positive, got {samples}")
    if pivots is None:
        ranked = sorted(
            ((u, v, p) for u, v, p in graph.edges()),
            key=lambda e: abs(float(e[2]) - 0.5),
        )
        pivots = [(u, v) for u, v, _p in ranked[:pivot_edges]]
    else:
        pivots = list(pivots)
        for u, v in pivots:
            if not graph.has_edge(u, v):
                raise ParameterError(f"pivot ({u!r}, {v!r}) is not an edge")
    if not pivots:
        raise ParameterError("need at least one pivot edge (or use naive MC)")
    rng = random.Random(seed)
    free_edges = [
        (u, v, p)
        for u, v, p in graph.edges()
        if (u, v) not in _both_orders(pivots)
    ]
    total = 0.0
    used = 0
    strata = list(itertools.product((False, True), repeat=len(pivots)))
    for index, pattern in enumerate(strata):
        weight = 1.0
        for present, (u, v) in zip(pattern, pivots):
            p = float(graph.probability(u, v))
            weight *= p if present else (1.0 - p)
        # A stratum is dead only when some factor is *exactly* 0 or 1
        # (the product then collapses to 0.0); <= guards against any
        # negative rounding noise as well.
        if weight <= 0.0:
            continue
        # Proportional allocation, at least one sample per live stratum.
        quota = max(1, round(samples * weight))
        if index == len(strata) - 1:
            quota = max(1, samples - used)
        stratum_total = 0.0
        for _ in range(quota):
            world = _sample_conditioned(graph, free_edges, pivots, pattern, rng)
            stratum_total += float(query(world))
        used += quota
        total += weight * (stratum_total / quota)
    # Conservative Hoeffding interval on the overall budget actually used.
    import math

    half = math.sqrt(math.log(2 / 0.05) / (2 * max(used, 1)))
    return Estimate(
        value=total,
        low=max(0.0, total - half),
        high=min(1.0, total + half),
        samples=used,
    )


def _sample_conditioned(
    graph: UncertainGraph,
    free_edges,
    pivots,
    pattern,
    rng: random.Random,
) -> Graph:
    world = Graph()
    for v in graph.vertices():
        world.add_vertex(v)
    for present, (u, v) in zip(pattern, pivots):
        if present:
            world.add_edge(u, v)
    for u, v, p in free_edges:
        if rng.random() < p:
            world.add_edge(u, v)
    return world


def _both_orders(pivots) -> set:
    doubled = set()
    for u, v in pivots:
        doubled.add((u, v))
        doubled.add((v, u))
    return doubled
