"""Task-driven team formation on collaboration networks (Exp-10 / Table 3).

Given a topic ``T`` and a query author set ``Q``, the task is to find a
compact, reliable team containing ``Q`` in the topic-conditioned
uncertain graph ``G^T``.  The clique-based solution returns the best
maximal (k, η)-clique containing the query (densest possible team);
UKCore/UKTruss return the query's component of the corresponding
cohesive subgraph, which is typically orders of magnitude larger and
full of irrelevant authors — the qualitative contrast of Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional

from repro.core.api import enumerate_maximal_cliques
from repro.baselines import core_community, truss_community
from repro.datasets.collaboration import CollaborationNetwork
from repro.uncertain.clique_probability import clique_probability
from repro.uncertain.graph import UncertainGraph, Vertex


@dataclass(frozen=True)
class TeamResult:
    """One team-formation answer."""

    method: str
    topic: str
    query: Vertex
    members: FrozenSet[Vertex]
    probability: Optional[float] = None

    @property
    def size(self) -> int:
        return len(self.members)

    def as_row(self) -> dict:
        return {
            "method": self.method,
            "topic": self.topic,
            "query": self.query,
            "team_size": self.size,
            "probability": self.probability,
        }


def best_team(
    graph: UncertainGraph, query: Vertex, k: int, eta
) -> FrozenSet[Vertex]:
    """Best maximal (k, η)-clique containing ``query``.

    "Best" maximizes (size, clique probability): the largest reliable
    team, ties broken by reliability — the density notion the paper's
    task-driven team formation optimizes.
    """
    best: List = [frozenset(), 0]

    def consider(clique: frozenset) -> None:
        if query not in clique:
            return
        prob = clique_probability(graph, clique)
        if (len(clique), prob) > (len(best[0]), best[1]):
            best[0], best[1] = clique, prob

    enumerate_maximal_cliques(graph, k, eta, "pmuc+", on_clique=consider)
    return best[0]


def form_teams(
    network: CollaborationNetwork,
    topic: str,
    query: Vertex,
    k: int = 4,
    eta=1e-10,
) -> List[TeamResult]:
    """Run the three methods for one ``<topic, query>`` pair (Table 3).

    ``eta`` defaults to the paper's 1e-10 because topic-conditional
    probabilities are tiny products.
    """
    graph = network.topic_graphs[topic]
    clique_team = best_team(graph, query, k, eta)
    results = [
        TeamResult(
            "PMUCE",
            topic,
            query,
            clique_team,
            float(clique_probability(graph, clique_team)) if clique_team else None,
        )
    ]
    for method, community in (
        ("UKCore", core_community(graph, query, k - 1, eta)),
        ("UKTruss", truss_community(graph, query, k, eta)),
    ):
        results.append(TeamResult(method, topic, query, frozenset(community)))
    return results
