"""The paper's three case-study applications (Exp-8, Exp-9, Exp-10)."""

from repro.applications.clustering_eval import (
    PrecisionReport,
    complex_recovery,
    ppi_cluster_with_cliques,
    ppi_cluster_with_core,
    ppi_cluster_with_truss,
    predicted_pairs,
    score_clusters,
    table2_reports,
)
from repro.applications.community_search import (
    CommunityResult,
    clique_community,
    community_diameter,
    search_communities,
)
from repro.applications.team_formation import (
    TeamResult,
    best_team,
    form_teams,
)
from repro.applications.visualization import community_to_dot, to_dot

__all__ = [
    "PrecisionReport",
    "complex_recovery",
    "predicted_pairs",
    "score_clusters",
    "table2_reports",
    "ppi_cluster_with_cliques",
    "ppi_cluster_with_core",
    "ppi_cluster_with_truss",
    "CommunityResult",
    "clique_community",
    "community_diameter",
    "search_communities",
    "TeamResult",
    "best_team",
    "form_teams",
    "to_dot",
    "community_to_dot",
]
