"""Community search on uncertain knowledge graphs (Exp-9 / Fig. 11).

Given a query entity, three methods return a "community":

* **PMUCE** — the union of the maximal (k, η)-cliques containing the
  query (small, topically pure);
* **UKCore** — the query's connected component inside the (k, η)-core
  (large, mixed — the paper could not even visualize it);
* **UKTruss** — the query's component in the local (k, γ)-truss
  (in between, still topically mixed).

Each result carries the size/edge/diameter statistics the paper quotes
and, on the planted stand-in graphs, a topical-purity score against the
ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional

from repro.core.api import enumerate_maximal_cliques
from repro.baselines import core_community, truss_community
from repro.datasets.knowledge_graph import KnowledgeGraph
from repro.uncertain.graph import UncertainGraph, Vertex


@dataclass(frozen=True)
class CommunityResult:
    """One community-search answer with its Fig.-11 statistics."""

    method: str
    query: Vertex
    vertices: FrozenSet[Vertex]
    num_edges: int
    diameter: Optional[int]
    purity: Optional[float] = None

    @property
    def size(self) -> int:
        return len(self.vertices)

    def as_row(self) -> dict:
        return {
            "method": self.method,
            "query": self.query,
            "vertices": self.size,
            "edges": self.num_edges,
            "diameter": self.diameter,
            "purity": None if self.purity is None else round(self.purity, 3),
        }


def clique_community(
    graph: UncertainGraph, query: Vertex, k: int, eta
) -> FrozenSet[Vertex]:
    """Union of maximal (k, η)-cliques containing ``query``."""
    members: set = set()

    def collect(clique: frozenset) -> None:
        if query in clique:
            members.update(clique)

    enumerate_maximal_cliques(graph, k, eta, "pmuc+", on_clique=collect)
    return frozenset(members)


def community_diameter(graph: UncertainGraph, vertices) -> Optional[int]:
    """Diameter of the induced subgraph (None if empty/disconnected)."""
    sub = graph.subgraph(vertices)
    if not sub.num_vertices:
        return None
    best = 0
    vertex_list = sub.vertices()
    for source in vertex_list:
        dist = {source: 0}
        frontier = [source]
        while frontier:
            nxt = []
            for v in frontier:
                # repro-lint: ok REP001 BFS level sets and the diameter are order-independent
                for u in sub.neighbors(v):
                    if u not in dist:
                        dist[u] = dist[v] + 1
                        nxt.append(u)
            frontier = nxt
        if len(dist) < sub.num_vertices:
            return None
        best = max(best, max(dist.values()))
    return best


def search_communities(
    graph: UncertainGraph,
    query: Vertex,
    k: int,
    eta,
    knowledge: Optional[KnowledgeGraph] = None,
    topic: Optional[str] = None,
) -> List[CommunityResult]:
    """Run all three methods on one query (a Fig.-11 panel)."""
    answers = [
        ("PMUCE", clique_community(graph, query, k, eta)),
        ("UKCore", core_community(graph, query, k - 1, eta)),
        ("UKTruss", truss_community(graph, query, k, eta)),
    ]
    results = []
    for method, vertices in answers:
        sub = graph.subgraph(vertices)
        purity = None
        if knowledge is not None and topic is not None:
            purity = knowledge.purity(vertices, topic)
        results.append(
            CommunityResult(
                method=method,
                query=query,
                vertices=frozenset(vertices),
                num_edges=sub.num_edges,
                diameter=community_diameter(graph, vertices),
                purity=purity,
            )
        )
    return results
