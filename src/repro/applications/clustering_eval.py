"""Clustering-quality evaluation on PPI networks (Exp-8 / Table 2).

Predicted clusters are scored against planted protein complexes by
pair-level precision: every unordered protein pair placed together by
a method is a *predicted interaction*; it is a true positive when some
ground-truth complex contains both proteins and a false positive
otherwise.  ``PR = TP / (TP + FP)`` exactly as Table 2 reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Set, Tuple

from repro.core.api import enumerate_maximal_cliques
from repro.baselines import k_eta_core, k_gamma_truss, pkwik_cluster, uscan
from repro.datasets.ppi import PPINetwork
from repro.uncertain.graph import UncertainGraph


@dataclass(frozen=True)
class PrecisionReport:
    """One Table-2 row (plus recall/F1, which the paper omits)."""

    algorithm: str
    num_results: int
    true_positive: int
    false_positive: int
    total_true_pairs: int = 0

    @property
    def precision(self) -> float:
        """``TP / (TP + FP)``; 0.0 when nothing was predicted."""
        total = self.true_positive + self.false_positive
        return self.true_positive / total if total else 0.0

    @property
    def recall(self) -> float:
        """``TP / (all ground-truth pairs)``; 0.0 without ground truth."""
        if not self.total_true_pairs:
            return 0.0
        return self.true_positive / self.total_true_pairs

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if p + r else 0.0

    def as_row(self) -> dict:
        return {
            "Algorithm": self.algorithm,
            "#Results": self.num_results,
            "TP": self.true_positive,
            "FP": self.false_positive,
            "PR": round(self.precision, 3),
        }

    def as_extended_row(self) -> dict:
        """Table-2 row extended with recall and F1."""
        row = self.as_row()
        row["Recall"] = round(self.recall, 3)
        row["F1"] = round(self.f1, 3)
        return row


def predicted_pairs(clusters: Iterable[Iterable]) -> Set[Tuple]:
    """All within-cluster unordered pairs over all predicted clusters."""
    pairs: Set[Tuple] = set()
    for cluster in clusters:
        members = sorted(cluster, key=repr)
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                pairs.add((u, v))
    return pairs


def score_clusters(
    algorithm: str, clusters: List, network: PPINetwork
) -> PrecisionReport:
    """Score predicted clusters against the planted complexes."""
    truth = network.true_pairs()
    pairs = predicted_pairs(clusters)
    tp = len(pairs & truth)
    return PrecisionReport(
        algorithm=algorithm,
        num_results=len(clusters),
        true_positive=tp,
        false_positive=len(pairs) - tp,
        total_true_pairs=len(truth),
    )


def complex_recovery(
    clusters: Iterable[Iterable],
    network: PPINetwork,
    overlap: float = 0.5,
) -> float:
    """Fraction of planted complexes recovered by some predicted cluster.

    A complex counts as recovered when a cluster matches it with
    neighborhood affinity ``|C ∩ P|² / (|C| · |P|) >= overlap`` — the
    standard complex-wise evaluation of the PPI literature (Brohée &
    van Helden 2006), complementing pair-level precision.
    """
    if not 0 < overlap <= 1:
        raise ValueError(f"overlap must lie in (0, 1], got {overlap!r}")
    cluster_sets = [set(c) for c in clusters if c]
    recovered = 0
    for complex_ in network.complexes:
        target = set(complex_)
        for cluster in cluster_sets:
            shared = len(cluster & target)
            if not shared:
                continue
            affinity = shared * shared / (len(cluster) * len(target))
            if affinity >= overlap:
                recovered += 1
                break
    return recovered / len(network.complexes) if network.complexes else 0.0


def ppi_cluster_with_cliques(
    graph: UncertainGraph, k: int = 5, eta: float = 0.1
) -> List[frozenset]:
    """Cluster proteins as the maximal (k, η)-cliques (``PMUCE``)."""
    return list(enumerate_maximal_cliques(graph, k, eta, "pmuc+").cliques)


def ppi_cluster_with_core(
    graph: UncertainGraph, k: int = 4, eta: float = 0.1
) -> List[List]:
    """Cluster proteins as connected components of the (k, η)-core."""
    return k_eta_core(graph, k, eta).connected_components()


def ppi_cluster_with_truss(
    graph: UncertainGraph, k: int = 5, gamma: float = 0.1
) -> List[List]:
    """Cluster proteins as components of the local (k, γ)-truss."""
    return k_gamma_truss(graph, k, gamma).connected_components()


def table2_reports(
    network: PPINetwork,
    clique_k: int = 5,
    eta: float = 0.1,
    uscan_epsilon: float = 0.45,
    uscan_mu: int = 3,
    seed: int = 0,
) -> List[PrecisionReport]:
    """Run all five Table-2 methods on one PPI network.

    The default parameters are scaled to the stand-in network the same
    way the paper scales to CORE (cliques of at least ``clique_k``
    proteins, core/truss orders one step apart, default USCAN/PCluster
    settings).
    """
    graph = network.graph
    rows = [
        score_clusters(
            "USCAN", uscan(graph, uscan_epsilon, uscan_mu), network
        ),
        score_clusters(
            "PCluster",
            [c for c in pkwik_cluster(graph, seed=seed) if len(c) >= 2],
            network,
        ),
        score_clusters(
            "UKCore", ppi_cluster_with_core(graph, clique_k - 1, eta), network
        ),
        score_clusters(
            "UKTruss", ppi_cluster_with_truss(graph, clique_k, eta), network
        ),
        score_clusters(
            "PMUCE", ppi_cluster_with_cliques(graph, clique_k, eta), network
        ),
    ]
    return rows
