"""GraphViz DOT export for case-study results.

The paper presents its community-search and team-formation results as
drawings (Fig. 11, Table 3's teams).  This module renders an uncertain
(sub)graph — optionally with highlighted cliques/communities — to DOT
text that any GraphViz installation can lay out, without adding a
runtime dependency.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence

from repro.uncertain.graph import UncertainGraph, Vertex

#: Fill colors cycled over highlight groups (GraphViz X11 names).
_PALETTE = (
    "lightblue", "lightgoldenrod", "lightpink", "palegreen",
    "plum", "lightsalmon", "khaki", "lightcyan",
)


def to_dot(
    graph: UncertainGraph,
    highlights: Optional[Sequence[Iterable[Vertex]]] = None,
    labels: Optional[Mapping[Vertex, str]] = None,
    name: str = "uncertain",
    min_probability: float = 0.0,
) -> str:
    """Render ``graph`` as GraphViz DOT.

    Parameters
    ----------
    highlights:
        Optional vertex groups (e.g. maximal cliques or communities);
        group ``i`` is filled with the ``i``-th palette color, and
        edges inside a group are drawn bold.
    labels:
        Optional vertex label overrides (default: ``str(vertex)``).
    min_probability:
        Edges below this probability are omitted (decluttering dense
        drawings, as the paper's figures do).

    Edge pen width scales with probability, and the probability is the
    edge label, so confidence is visible in the drawing.
    """
    group_of: Dict[Vertex, int] = {}
    groups = [set(group) for group in (highlights or [])]
    for i, group in enumerate(groups):
        for v in group:
            group_of.setdefault(v, i)
    lines = [f"graph {_quote(name)} {{"]
    lines.append("  node [style=filled, fillcolor=white, shape=ellipse];")
    for v in sorted(graph.vertices(), key=repr):
        attrs = [f"label={_quote(str(labels.get(v, v)) if labels else str(v))}"]
        if v in group_of:
            color = _PALETTE[group_of[v] % len(_PALETTE)]
            attrs.append(f"fillcolor={color}")
        lines.append(f"  {_quote(str(v))} [{', '.join(attrs)}];")
    for u, v, p in sorted(graph.edges(), key=lambda e: (repr(e[0]), repr(e[1]))):
        prob = float(p)
        if prob < min_probability:
            continue
        attrs = [
            f'label="{prob:.2f}"',
            f"penwidth={max(0.5, 3 * prob):.2f}",
        ]
        same_group = (
            u in group_of and v in group_of and group_of[u] == group_of[v]
        )
        if same_group:
            attrs.append("style=bold")
        else:
            attrs.append('color=gray50')
        lines.append(
            f"  {_quote(str(u))} -- {_quote(str(v))} [{', '.join(attrs)}];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def community_to_dot(
    graph: UncertainGraph,
    community: Iterable[Vertex],
    query: Optional[Vertex] = None,
    name: str = "community",
) -> str:
    """DOT for the induced subgraph of one community (Fig.-11 style).

    The query vertex (if given) is drawn as a doubled circle.
    """
    members = set(community)
    sub = graph.subgraph(members)
    text = to_dot(sub, highlights=[members], name=name)
    if query is not None and query in members:
        marker = f"  {_quote(str(query))} [peripheries=2];\n"
        text = text.replace("}\n", marker + "}\n")
    return text


def _quote(token: str) -> str:
    escaped = token.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'
