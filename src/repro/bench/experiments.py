"""Experiment definitions — one function per paper table/figure.

Each function returns plain row dictionaries (printable with
:func:`repro.bench.harness.print_table`) whose columns mirror what the
paper reports.  Parameter grids default to scaled-down versions of the
paper's (k ∈ [6, 20] → [4, 12]; η ∈ [0.01, 0.1] unchanged) because the
stand-in graphs are ~1000× smaller than the originals; pass explicit
grids to override.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.bench.harness import (
    RunRecord,
    peak_memory_bytes,
    timed_config_enumeration,
    timed_enumeration,
)
from repro.core.api import enumerate_maximal_cliques
from repro.core.config import PMUC_PLUS_CONFIG, PivotConfig
from repro.datasets import (
    generate_collaboration_network,
    generate_knowledge_graph,
    generate_ppi_network,
    load_dataset,
    load_weighted_edges,
    sample_edges,
    sample_vertices,
    table1_rows,
    uncertain_from_weights,
)
from repro.applications import form_teams, search_communities, table2_reports
from repro.reduction import topk_core, topk_triangle
#: Scaled default grids (see module docstring).
DEFAULT_DATASETS: Tuple[str, ...] = (
    "enron", "superuser", "cahepph", "wiki-fr", "soflow",
)
DEFAULT_KS: Tuple[int, ...] = (4, 6, 8, 10, 12)
DEFAULT_ETAS: Tuple[float, ...] = (0.01, 0.025, 0.05, 0.075, 0.1)
DEFAULT_K: int = 8          # the paper's default k=14, scaled
DEFAULT_ETA: float = 0.1    # the paper's default

Row = Dict[str, object]


# ----------------------------------------------------------------------
# Table 1 — dataset statistics
# ----------------------------------------------------------------------
def experiment_table1(seed: int = 0) -> List[Row]:
    """Table 1: |V|, |E|, d_max, δ of every stand-in dataset."""
    return table1_rows(seed)


# ----------------------------------------------------------------------
# Exp-1 / Fig. 3 — runtime of MUC, PMUC, PMUC+ varying k and η
# ----------------------------------------------------------------------
def experiment_fig3(
    datasets: Sequence[str] = DEFAULT_DATASETS,
    ks: Sequence[int] = DEFAULT_KS,
    etas: Sequence[float] = DEFAULT_ETAS,
    algorithms: Sequence[str] = ("muc", "pmuc", "pmuc+"),
    seed: int = 0,
) -> List[Row]:
    """Fig. 3: runtime of each algorithm, sweeping k (η fixed) then η
    (k fixed)."""
    rows: List[Row] = []
    for name in datasets:
        graph = load_dataset(name, seed)
        for k in ks:
            for algorithm in algorithms:
                record = timed_enumeration(algorithm, graph, k, DEFAULT_ETA, algorithm)
                rows.append(_sweep_row(name, "k", k, DEFAULT_ETA, record))
        for eta in etas:
            for algorithm in algorithms:
                record = timed_enumeration(algorithm, graph, DEFAULT_K, eta, algorithm)
                rows.append(_sweep_row(name, "eta", DEFAULT_K, eta, record))
    return rows


# ----------------------------------------------------------------------
# Exp-2 / Fig. 4 — vertex orderings
# ----------------------------------------------------------------------
ORDERING_VARIANTS: Dict[str, PivotConfig] = {
    "PMUC-R": PivotConfig(ordering="as-is", kpivot="color", reduction="triangle"),
    "PMUC-C": PivotConfig(ordering="degeneracy", kpivot="color", reduction="triangle"),
    "PMUC+": PMUC_PLUS_CONFIG,
}


def experiment_fig4(
    datasets: Sequence[str] = ("cahepph", "soflow"),
    ks: Sequence[int] = DEFAULT_KS,
    etas: Sequence[float] = DEFAULT_ETAS,
    seed: int = 0,
) -> List[Row]:
    """Fig. 4: as-is vs degeneracy vs (Top_k, η)-core orderings."""
    return _config_sweep(ORDERING_VARIANTS, datasets, ks, etas, seed)


# ----------------------------------------------------------------------
# Exp-3 / Fig. 5 — pivot selection strategies
# ----------------------------------------------------------------------
PIVOT_VARIANTS: Dict[str, PivotConfig] = {
    "PMUC-D": PivotConfig(pivot="degree", kpivot="color", reduction="triangle"),
    "PMUC-CD": PivotConfig(pivot="color", kpivot="color", reduction="triangle"),
    "PMUC+": PMUC_PLUS_CONFIG,
}


def experiment_fig5(
    datasets: Sequence[str] = ("cahepph", "soflow"),
    ks: Sequence[int] = DEFAULT_KS,
    etas: Sequence[float] = DEFAULT_ETAS,
    seed: int = 0,
) -> List[Row]:
    """Fig. 5: max-degree vs max-color vs hybrid pivot selection."""
    return _config_sweep(PIVOT_VARIANTS, datasets, ks, etas, seed)


# ----------------------------------------------------------------------
# Exp-4 / Figs. 6-7 — graph reduction techniques
# ----------------------------------------------------------------------
def experiment_fig6_fig7(
    datasets: Sequence[str] = ("cahepph", "soflow"),
    ks: Sequence[int] = DEFAULT_KS,
    etas: Sequence[float] = DEFAULT_ETAS,
    seed: int = 0,
) -> List[Row]:
    """Figs. 6-7: TopCore vs TopTriangle runtime and remaining vertices.

    TopTriangle is applied on top of the core, as PMUC+ does (Lemma 10
    makes the triangle subgraph a subset of the corresponding core).
    """
    rows: List[Row] = []
    for name in datasets:
        graph = load_dataset(name, seed)
        for sweep, k, eta in _sweep_grid(ks, etas):
            start = time.perf_counter()
            core = topk_core(graph, max(k - 1, 0), eta)
            core_seconds = time.perf_counter() - start
            start = time.perf_counter()
            triangle = (
                topk_triangle(core, k - 2, eta) if k >= 3 else core
            )
            triangle_seconds = core_seconds + (time.perf_counter() - start)
            for label, seconds, reduced in (
                ("TopCore", core_seconds, core),
                ("TopTriangle", triangle_seconds, triangle),
            ):
                rows.append(
                    {
                        "dataset": name,
                        "sweep": sweep,
                        "k": k,
                        "eta": eta,
                        "technique": label,
                        "seconds": seconds,
                        "remaining_vertices": reduced.num_vertices,
                        "remaining_edges": reduced.num_edges,
                    }
                )
    return rows


# ----------------------------------------------------------------------
# Exp-5 / Fig. 8 — probability distributions
# ----------------------------------------------------------------------
def experiment_fig8(
    datasets: Sequence[str] = ("enron", "soflow"),
    ks: Sequence[int] = DEFAULT_KS,
    models: Sequence[str] = ("uniform", "geometric", "normal"),
    seed: int = 0,
) -> List[Row]:
    """Fig. 8: MUC vs PMUC+ under uniform/geometric/normal models."""
    short = {"uniform": "U", "geometric": "G", "normal": "N"}
    rows: List[Row] = []
    for name in datasets:
        edges = load_weighted_edges(name, seed)
        for model in models:
            graph = uncertain_from_weights(edges, model, seed)
            for k in ks:
                for algorithm, tag in (("muc", "MC"), ("pmuc+", "PM+")):
                    record = timed_enumeration(
                        f"{short[model]}{tag}", graph, k, DEFAULT_ETA, algorithm
                    )
                    rows.append(
                        {
                            "dataset": name,
                            "model": model,
                            "series": record.label,
                            "k": k,
                            "eta": DEFAULT_ETA,
                            "seconds": record.seconds,
                            "cliques": record.num_cliques,
                        }
                    )
    return rows


# ----------------------------------------------------------------------
# Exp-6 / Fig. 9 — scalability on the largest dataset
# ----------------------------------------------------------------------
def experiment_fig9(
    dataset: str = "soflow",
    fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
    k: int = 6,
    eta: float = DEFAULT_ETA,
    algorithms: Sequence[str] = ("muc", "pmuc", "pmuc+"),
    seed: int = 0,
) -> List[Row]:
    """Fig. 9: runtime on 20-100% vertex and edge samples."""
    edges = load_weighted_edges(dataset, seed)
    rows: List[Row] = []
    for mode, sampler in (("vertices", sample_vertices), ("edges", sample_edges)):
        for fraction in fractions:
            sampled = sampler(edges, fraction, seed)
            graph = uncertain_from_weights(sampled, "exponential", seed)
            for algorithm in algorithms:
                record = timed_enumeration(algorithm, graph, k, eta, algorithm)
                rows.append(
                    {
                        "dataset": dataset,
                        "sampled": mode,
                        "fraction": fraction,
                        "k": k,
                        "eta": eta,
                        "algorithm": algorithm,
                        "seconds": record.seconds,
                        "cliques": record.num_cliques,
                    }
                )
    return rows


# ----------------------------------------------------------------------
# Exp-7 / Fig. 10 — memory overhead
# ----------------------------------------------------------------------
def experiment_fig10(
    datasets: Sequence[str] = DEFAULT_DATASETS,
    k: int = DEFAULT_K,
    eta: float = DEFAULT_ETA,
    algorithms: Sequence[str] = ("muc", "pmuc", "pmuc+"),
    seed: int = 0,
) -> List[Row]:
    """Fig. 10: peak memory of each algorithm vs the graph footprint."""
    rows: List[Row] = []
    for name in datasets:
        graph = load_dataset(name, seed)
        graph_bytes = peak_memory_bytes(lambda: load_dataset(name, seed))
        for algorithm in algorithms:
            peak = peak_memory_bytes(
                lambda: enumerate_maximal_cliques(
                    graph, k, eta, algorithm, on_clique=lambda c: None
                )
            )
            rows.append(
                {
                    "dataset": name,
                    "algorithm": algorithm,
                    "k": k,
                    "eta": eta,
                    "graph_mb": round(graph_bytes / 1e6, 3),
                    "peak_mb": round(peak / 1e6, 3),
                }
            )
    return rows


# ----------------------------------------------------------------------
# Exp-8 / Table 2 — PPI clustering precision
# ----------------------------------------------------------------------
def experiment_table2(seed: int = 0, clique_k: int = 5, eta: float = 0.1) -> List[Row]:
    """Table 2: clustering precision of five methods on the PPI stand-in."""
    network = generate_ppi_network(seed=seed)
    return [report.as_row() for report in table2_reports(network, clique_k, eta, seed=seed)]


# ----------------------------------------------------------------------
# Exp-9 / Fig. 11 — community search on knowledge graphs
# ----------------------------------------------------------------------
def experiment_fig11(seed: int = 0, k: int = 4) -> List[Row]:
    """Fig. 11: community search around "plant" (CN15K stand-in) and
    "mlb" (NL27K stand-in)."""
    rows: List[Row] = []
    for flavor, query, eta in (("conceptnet", "plant", 0.001), ("nell", "mlb", 0.1)):
        knowledge = generate_knowledge_graph(flavor=flavor, seed=seed)
        for result in search_communities(
            knowledge.graph, query, k, eta, knowledge, query
        ):
            row = result.as_row()
            row["dataset"] = "cn15k" if flavor == "conceptnet" else "nl27k"
            rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Exp-10 / Table 3 — task-driven team formation
# ----------------------------------------------------------------------
def experiment_table3(seed: int = 0, k: int = 4, eta: float = 1e-10) -> List[Row]:
    """Table 3: teams for one query author under two topics."""
    network = generate_collaboration_network(seed=seed)
    rows: List[Row] = []
    for topic in ("databases", "information networks"):
        for result in form_teams(network, topic, "anchor-0", k, eta):
            row = result.as_row()
            row["members"] = ",".join(sorted(result.members)[:8])
            rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Ablation (beyond the paper): M-pivot and K-pivot variants
# ----------------------------------------------------------------------
ABLATION_VARIANTS: Dict[str, PivotConfig] = {
    "no-pivot": PivotConfig(mpivot="off", kpivot="off", reduction="core"),
    "basic-mpivot": PivotConfig(mpivot="basic", kpivot="off", reduction="core"),
    "improved-mpivot": PivotConfig(mpivot="improved", kpivot="off", reduction="core"),
    "plus-plain-kpivot": PivotConfig(mpivot="improved", kpivot="plain", reduction="core"),
    "plus-color-kpivot": PivotConfig(mpivot="improved", kpivot="color", reduction="core"),
    "full-pmuc+": PMUC_PLUS_CONFIG,
}


def experiment_ablation(
    datasets: Sequence[str] = ("cahepph", "soflow"),
    k: int = DEFAULT_K,
    eta: float = DEFAULT_ETA,
    seed: int = 0,
) -> List[Row]:
    """Ablate each pruning layer of PMUC+ at the default parameters."""
    rows: List[Row] = []
    for name in datasets:
        graph = load_dataset(name, seed)
        for label, config in ABLATION_VARIANTS.items():
            record = timed_config_enumeration(label, graph, k, eta, config)
            rows.append(
                {
                    "dataset": name,
                    "variant": label,
                    "k": k,
                    "eta": eta,
                    "seconds": record.seconds,
                    "cliques": record.num_cliques,
                    "calls": record.stats["calls"],
                }
            )
    return rows


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _sweep_grid(
    ks: Sequence[int], etas: Sequence[float]
) -> Iterable[Tuple[str, int, float]]:
    for k in ks:
        yield ("k", k, DEFAULT_ETA)
    for eta in etas:
        yield ("eta", DEFAULT_K, eta)


def _sweep_row(
    dataset: str, sweep: str, k: int, eta: float, record: RunRecord
) -> Row:
    return {
        "dataset": dataset,
        "sweep": sweep,
        "k": k,
        "eta": eta,
        "algorithm": record.label,
        "seconds": record.seconds,
        "cliques": record.num_cliques,
        "calls": record.stats["calls"],
    }


def _config_sweep(
    variants: Dict[str, PivotConfig],
    datasets: Sequence[str],
    ks: Sequence[int],
    etas: Sequence[float],
    seed: int,
) -> List[Row]:
    rows: List[Row] = []
    for name in datasets:
        graph = load_dataset(name, seed)
        for sweep, k, eta in _sweep_grid(ks, etas):
            for label, config in variants.items():
                record = timed_config_enumeration(label, graph, k, eta, config)
                rows.append(
                    {
                        "dataset": name,
                        "sweep": sweep,
                        "k": k,
                        "eta": eta,
                        "variant": label,
                        "seconds": record.seconds,
                        "cliques": record.num_cliques,
                        "calls": record.stats["calls"],
                    }
                )
    return rows
