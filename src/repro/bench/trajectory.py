"""Observability trajectory artifact (``BENCH_pr4.json``) generator.

Produces the ``repro.obs/bench-v1`` baseline that ``python -m repro.obs
diff`` gates CI against: one run record per workload x backend with a
noise-hardened timing, the deterministic :class:`SearchStats` counters,
and the full :class:`~repro.obs.metrics.MetricsRegistry` snapshot
(per-depth histograms, phase timers, gauges).

Measurement protocol (reuses the :mod:`repro.bench.kernel_speedup`
machinery — same workloads, same ``process_time``/gc-disabled timer):

* ``seconds`` is the **best of N obs-off rounds**, so the committed
  baseline never includes observer overhead and a timing regression
  flagged against it is a regression of the enumeration itself;
* ``stats`` and ``metrics`` come from one separate ``obs="metrics"``
  profiled run — they are deterministic, so a single pass suffices.

Usage::

    PYTHONPATH=src python -m repro.bench.trajectory --out BENCH_pr4.json
    PYTHONPATH=src python -m repro.bench.trajectory --quick   # CI gate
"""

from __future__ import annotations

import argparse
import json
from dataclasses import replace
from typing import Dict, List, Optional

from repro.bench.harness import format_table
from repro.bench.kernel_speedup import (
    QUICK_NAMES,
    WORKLOADS,
    build_graph,
    timed_run,
)
from repro.core.config import PMUC_PLUS_CONFIG
from repro.core.pmuc import PivotEnumerator

#: Schema tag shared with ``repro.obs`` (kept literal here so the bench
#: layer does not import the obs package at module import time).
BENCH_SCHEMA = "repro.obs/bench-v1"

BACKENDS = ("dict", "kernel")


def profiled_run(graph, k: int, eta: float, backend: str) -> Dict[str, object]:
    """One untimed ``obs="metrics"`` run; returns stats + metrics."""
    config = replace(PMUC_PLUS_CONFIG, backend=backend, obs="metrics")
    enumerator = PivotEnumerator(
        graph, k=k, eta=eta, config=config, on_clique=lambda _c: None
    )
    result = enumerator.run()
    return {
        "num_cliques": result.stats.outputs,
        "stats": result.stats.as_dict(),
        "metrics": enumerator.obs.metrics.as_dict(),
        "variant": enumerator.variant_used,
    }


def trajectory_run(
    spec: Dict[str, object], backend: str, rounds: int
) -> Dict[str, object]:
    """One ``runs[]`` record: best-of-N timing plus a profiled pass."""
    graph = build_graph(spec["params"])  # type: ignore[index]
    k = spec["k"]
    eta = spec["eta"]
    seconds = min(
        timed_run(graph, k, eta, backend) for _ in range(rounds)
    )
    profile = profiled_run(graph, k, eta, backend)
    return {
        "workload": spec["name"],
        "backend": backend,
        "k": k,
        "eta": eta,
        "seconds": seconds,
        "num_cliques": profile["num_cliques"],
        "stats": profile["stats"],
        "metrics": profile["metrics"],
        # The profiled (obs="metrics") run's recursion variant — the
        # run whose counters the diff gate compares.  ``repro.obs
        # diff`` refuses to align this record against one stamped with
        # a different variant; legacy unstamped baselines still align.
        "variant": profile["variant"],
    }


def build_document(
    quick: bool = False, rounds: Optional[int] = None
) -> Dict[str, object]:
    """The full (or quick) ``repro.obs/bench-v1`` document."""
    if rounds is None:
        rounds = 2 if quick else 5
    names = QUICK_NAMES if quick else tuple(w["name"] for w in WORKLOADS)
    runs = [
        trajectory_run(spec, backend, rounds)
        for spec in WORKLOADS
        if spec["name"] in names
        for backend in BACKENDS
    ]
    from repro.obs.runtime import runtime_fingerprint

    # Counter/metrics surfaces are deterministic, but the timings and
    # the fingerprint below are this machine's — the document-level
    # stamp pattern shared with kernel_speedup lives in
    # ``repro.store.records.document_stamp`` (which adds peak RSS on
    # top); the trajectory schema predates it and keeps the narrower
    # ``runtime_fingerprint`` block for baseline compatibility.
    meta: Dict[str, object] = {
        "timer": "process_time",
        "rounds": rounds,
        "estimator": "best-of-rounds (timeit-style min)",
        "gc_disabled": True,
        "sink": "streaming-noop",
        "obs_during_timing": "off",
        "obs_during_profiling": "metrics",
        "quick": quick,
    }
    # Where the numbers were produced — lets ``repro.obs diff`` warn
    # when a compare crosses machines or interpreter versions.
    meta.update(runtime_fingerprint())
    return {
        "schema": BENCH_SCHEMA,
        "bench": "obs-trajectory",
        "pr": 4,
        "algorithm": "pmuc+",
        "meta": meta,
        "runs": runs,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.trajectory",
        description="Generate the repro.obs bench-v1 trajectory baseline.",
    )
    parser.add_argument(
        "--out", metavar="PATH", default=None, help="write JSON to PATH"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI gate mode: smallest workload, 2 rounds",
    )
    parser.add_argument(
        "--rounds", type=int, default=None, help="override round count"
    )
    args = parser.parse_args(argv)
    if args.rounds is not None and args.rounds < 1:
        parser.error("--rounds must be at least 1")
    document = build_document(quick=args.quick, rounds=args.rounds)
    rows = [
        {
            "workload": r["workload"],
            "backend": r["backend"],
            "k": r["k"],
            "eta": r["eta"],
            "seconds": r["seconds"],
            "cliques": r["num_cliques"],
            "calls": r["stats"]["calls"],
            "expansions": r["stats"]["expansions"],
        }
        for r in document["runs"]
    ]
    print(format_table(rows, title="obs trajectory (pmuc+)"))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
