"""CI gate: parallel enumeration must equal its single-process run.

Runs one workload three ways — monolithic, sequentially partitioned
(:func:`repro.core.partition.enumerate_partitioned`, same chunking,
one process), and through
:func:`repro.core.partition.enumerate_parallel` with flight recording —
and fails unless every observability surface agrees:

1. the merged parallel clique set and ``outputs`` counter equal the
   monolithic run's (the partition invariant: one emitting seed per
   clique);
2. the merged cross-worker counters are **byte-identical**
   (``json.dumps`` with sorted keys) to the same-chunking
   single-process counters — the effort counters are deterministic for
   a fixed chunking, so multiprocessing must not move a single unit of
   work (they are *not* invariant across different chunkings: the
   M-pivot warm state carries across roots within a chunk, which is
   why the monolithic run only gates the clique surface);
3. the fleet's live merged registry counters
   (``result.fleet["metrics"]``) equal those merged counters; and
4. **replaying the per-worker flight logs** from disk
   (:func:`repro.obs.flight.merge_flight_registries`) rebuilds a
   registry whose counters are byte-identical to the live one.

(1)–(2) gate the partition layer; (3)–(4) gate the observability
pipeline itself — a worker whose metrics or flight stream drifted from
its in-memory registry fails here even if the cliques are right.

Gauges are deliberately outside the byte-identity check: per-worker
``roots_total`` / phase wall times legitimately differ across
processes.  Counters are the deterministic surface.

Usage (the CI ``obs-parallel`` job)::

    PYTHONPATH=src python -m repro.bench.parallel_gate \
        --flight-dir obs-artifacts --timeline-out obs-artifacts/trace.jsonl
"""

from __future__ import annotations

import argparse
import glob
import json
import os
from dataclasses import replace
from typing import Dict, List, Optional

from repro.bench.kernel_speedup import WORKLOADS, build_graph
from repro.core.config import PMUC_PLUS_CONFIG
from repro.core.partition import enumerate_parallel, enumerate_partitioned
from repro.core.pmuc import PivotEnumerator

DEFAULT_WORKLOAD = "communities-100"


def counters_of(metrics_doc: Dict[str, object]) -> Dict[str, object]:
    """The counters dict of a registry ``as_dict`` document."""
    return dict(metrics_doc.get("counters", {}))


def canonical(counters: Dict[str, object]) -> str:
    """Byte-stable form used for the identity checks."""
    return json.dumps(counters, sort_keys=True)


def stats_counters(stats_dict: Dict[str, int]) -> Dict[str, int]:
    """SearchStats as counter space (``max_depth`` is a gauge)."""
    return {
        name: value
        for name, value in sorted(stats_dict.items())
        if name != "max_depth"
    }


def run_gate(
    workload: str = DEFAULT_WORKLOAD,
    parts: int = 2,
    processes: Optional[int] = 2,
    obs: str = "light",
    flight_dir: str = "obs-artifacts",
    timeline_out: Optional[str] = None,
    store=None,
) -> List[str]:
    """Run both enumerations and return the list of failures (empty=ok).

    ``store`` persists the parallel run (clique set, merged counters,
    shard breakdown) under its ``peel/parts=N`` RunKey and registers
    the flight logs as artifacts of that run.  The gate needs a *live*
    fan-out, so a store that would answer the key from cache is a
    failure — point ``--store`` at a fresh directory.
    """
    spec = next(w for w in WORKLOADS if w["name"] == workload)
    graph = build_graph(spec["params"])  # type: ignore[index]
    k, eta = spec["k"], spec["eta"]
    config = replace(PMUC_PLUS_CONFIG, obs=obs)

    failures: List[str] = []
    if store is not None:
        from repro.store.key import run_key_for

        if store.has(run_key_for(
            graph, k, eta, config, procedure="peel/parts=%d" % parts
        )):
            failures.append(
                "store already holds this run key; the gate needs a "
                "live parallel run (use a fresh --store directory)"
            )
            return failures

    # Flight recorders append (crash-safety contract); a stale log from
    # a previous gate run would replay as two concatenated streams.
    os.makedirs(flight_dir, exist_ok=True)
    for stale in glob.glob(os.path.join(flight_dir, "flight-*.jsonl")):
        os.remove(stale)

    single = PivotEnumerator(graph, k, eta, config).run()
    sequential = enumerate_partitioned(
        graph, k, eta, parts=parts, config=config
    )
    parallel = enumerate_parallel(
        graph, k, eta,
        parts=parts, processes=processes, config=config,
        flight_dir=flight_dir, store=store,
    )
    single_cliques = set(map(frozenset, single.cliques))
    parallel_cliques = set(map(frozenset, parallel.cliques))
    if single_cliques != parallel_cliques:
        failures.append(
            "clique sets differ: single %d vs parallel %d"
            % (len(single_cliques), len(parallel_cliques))
        )
    if single.stats.outputs != parallel.stats.outputs:
        failures.append(
            "outputs differ: single %d vs parallel %d"
            % (single.stats.outputs, parallel.stats.outputs)
        )

    sequential_counters = stats_counters(sequential.stats.as_dict())
    merged_counters = stats_counters(parallel.stats.as_dict())
    if canonical(sequential_counters) != canonical(merged_counters):
        failures.append(
            "merged parallel counters != same-chunking single-process "
            "counters: %s vs %s"
            % (canonical(merged_counters), canonical(sequential_counters))
        )

    fleet_metrics = parallel.fleet.get("metrics")
    if fleet_metrics is None:
        failures.append(
            "fleet summary carries no merged metrics (obs=%r should "
            "observe every shard)" % obs
        )
    else:
        live_counters = counters_of(fleet_metrics)
        if canonical(live_counters) != canonical(merged_counters):
            failures.append(
                "live merged registry counters != merged stats "
                "counters: %s vs %s"
                % (canonical(live_counters), canonical(merged_counters))
            )

    worker_paths = sorted(
        glob.glob(os.path.join(flight_dir, "flight-worker*.jsonl"))
    )
    if len(worker_paths) != len(parallel.shards):
        failures.append(
            "expected %d worker flight logs in %s, found %d"
            % (len(parallel.shards), flight_dir, len(worker_paths))
        )
    from repro.obs.flight import merge_flight_registries, replay_flight

    logs = [replay_flight(path) for path in worker_paths]
    for log in logs:
        if log.truncated:
            failures.append("flight log %s has a truncated tail" % log.path)
        if log.finish() is None:
            failures.append("flight log %s has no finish record" % log.path)
    replayed = merge_flight_registries(logs)
    replayed_counters = counters_of(replayed.as_dict())
    if fleet_metrics is not None and canonical(
        replayed_counters
    ) != canonical(counters_of(fleet_metrics)):
        failures.append(
            "replayed flight counters != live merged registry "
            "counters: %s vs %s"
            % (canonical(replayed_counters),
               canonical(counters_of(fleet_metrics)))
        )

    if timeline_out is not None:
        from repro.obs.fleet import load_flights, render_timeline

        all_paths = sorted(
            glob.glob(os.path.join(flight_dir, "flight-*.jsonl"))
        )
        with open(timeline_out, "w", encoding="utf-8") as handle:
            handle.write(render_timeline(load_flights(all_paths)))

    fleet_view = {
        key: value
        for key, value in sorted(parallel.fleet.items())
        if key != "metrics"
    }
    print("fleet: %s" % json.dumps(fleet_view, sort_keys=True))
    print(
        "counters: %s (sequential == merged == live == replayed: %s)"
        % (canonical(merged_counters), not failures)
    )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.parallel_gate",
        description=(
            "Gate: a multi-worker enumeration with flight recording "
            "must replay to the exact single-process counters."
        ),
    )
    parser.add_argument(
        "--workload",
        default=DEFAULT_WORKLOAD,
        choices=tuple(w["name"] for w in WORKLOADS),
        help="workload spec to enumerate (default: %(default)s)",
    )
    parser.add_argument(
        "--parts", type=int, default=2, help="seed chunks (default: 2)"
    )
    parser.add_argument(
        "--processes", type=int, default=2,
        help="pool size (default: 2)",
    )
    parser.add_argument(
        "--obs",
        choices=("light", "metrics", "full"),
        default="light",
        help="per-worker observation level (default: light)",
    )
    parser.add_argument(
        "--flight-dir",
        default="obs-artifacts",
        metavar="DIR",
        help="directory for the flight logs (default: %(default)s)",
    )
    parser.add_argument(
        "--timeline-out",
        default=None,
        metavar="PATH",
        help="also write the per-worker Chrome trace to PATH",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help=(
            "persist the parallel run into the run store at DIR and "
            "register the flight logs as its artifacts (must be a "
            "fresh store: the gate asserts a live fan-out)"
        ),
    )
    args = parser.parse_args(argv)
    if args.parts < 2:
        parser.error("--parts must be at least 2 (the gate is about fan-out)")
    store = None
    if args.store is not None:
        from repro.store.store import RunStore

        store = RunStore(args.store)
    failures = run_gate(
        workload=args.workload,
        parts=args.parts,
        processes=args.processes,
        obs=args.obs,
        flight_dir=args.flight_dir,
        timeline_out=args.timeline_out,
        store=store,
    )
    for failure in failures:
        print("GATE FAILURE: %s" % failure)
    if failures:
        return 1
    print("parallel obs gate ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
