"""Shared experiment-harness utilities.

Runs configured enumerations under a timer, collects search statistics
and renders the row/series layout of the paper's tables and figures as
plain text, so every benchmark prints something directly comparable to
the published artifact.

Record stamping (backend/variant/env fingerprints, full-precision
seconds) lives in :mod:`repro.store.records` — one writer shared by
every producer; :class:`RunRecord` is re-exported here for
compatibility.  Every timed entry point accepts ``store=`` (a
:class:`~repro.store.store.RunStore`): when given, the run's cliques
and counters are persisted under its canonical
:class:`~repro.store.key.RunKey`.  Benchmarks still *execute* every
run — a stored timing must never be served as a fresh measurement —
persistence only publishes the measured run for ``repro.store query``
and for cache-hitting consumers (sessions, the service layer).
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.api import enumerate_maximal_cliques
from repro.core.config import PivotConfig
from repro.core.pmuc import PivotEnumerator
from repro.exceptions import SanitizerViolation
from repro.store.records import RunRecord, stamped_record
from repro.uncertain.graph import UncertainGraph

__all__ = [
    "RunRecord",
    "timed_enumeration",
    "timed_config_enumeration",
    "sanitized_config_enumeration",
    "timed_parallel_enumeration",
    "peak_memory_bytes",
    "format_table",
    "print_table",
]


def timed_enumeration(
    label: str, graph: UncertainGraph, k: int, eta, algorithm: str
) -> RunRecord:
    """Time one named-algorithm enumeration (discarding cliques)."""
    count = [0]

    def sink(_clique: frozenset) -> None:
        count[0] += 1

    start = time.perf_counter()
    result = enumerate_maximal_cliques(graph, k, eta, algorithm, on_clique=sink)
    elapsed = time.perf_counter() - start
    return RunRecord(label, elapsed, count[0], result.stats.as_dict())


def _persist(store, graph, k, eta, config, record, cliques,
             violation=None, procedure: str = "peel") -> Optional[str]:
    """Publish one measured run under its canonical key (best effort)."""
    if store is None:
        return None
    from repro.store.key import run_key_for

    key = run_key_for(graph, k, eta, config, procedure=procedure)
    return store.put_run(key, record, cliques=cliques, violation=violation)


def timed_config_enumeration(
    label: str,
    graph: UncertainGraph,
    k: int,
    eta,
    config: PivotConfig,
    sanitize: Optional[str] = None,
    obs: Optional[str] = None,
    store=None,
) -> RunRecord:
    """Time one :class:`PivotConfig`-driven enumeration.

    ``sanitize`` (``"off"``/``"light"``/``"full"``) overrides the
    config's sanitizer level for this run; checks then count toward the
    measured time, which is the point — the harness is how sanitizer
    overhead is quantified.  ``obs`` (``"off"``/``"metrics"``/
    ``"full"``) likewise overrides the observability level — the same
    mechanism quantifies observer overhead.  With ``store``, the run
    (cliques + counters) is persisted under its canonical key.
    """
    if sanitize is not None:
        config = replace(config, sanitize=sanitize)
    if obs is not None:
        config = replace(config, obs=obs)
    count = [0]
    cliques: Optional[List[frozenset]] = [] if store is not None else None

    def sink(clique: frozenset) -> None:
        count[0] += 1
        if cliques is not None:
            cliques.append(clique)

    enumerator = PivotEnumerator(graph, k, eta, config, on_clique=sink)
    start = time.perf_counter()
    result = enumerator.run()
    elapsed = time.perf_counter() - start
    # ``backend_used``, not ``config.backend``: the kernel silently
    # falls back to dict on unsupported inputs, and the row must say
    # what actually ran (the diff gate refuses cross-backend rows).
    record = stamped_record(
        label,
        elapsed,
        count[0],
        result.stats.as_dict(),
        backend=enumerator.backend_used,
        variant=enumerator.variant_used,
    )
    _persist(store, graph, k, eta, config, record, cliques)
    return record


def sanitized_config_enumeration(
    label: str,
    graph: UncertainGraph,
    k: int,
    eta,
    config: PivotConfig,
    sanitize: str = "full",
    store=None,
) -> RunRecord:
    """A sanitized run that records violations instead of raising.

    On a violation the record carries ``extra["violation"]`` (the
    serialized :class:`~repro.sanitize.report.ViolationReport` dict,
    replayable via :func:`repro.sanitize.replay`) and the clique count
    reached before the check fired.  With ``store``, the violation
    report is persisted alongside the run so ``repro.store query show``
    can hand back a replayable reproduction.
    """
    config = replace(config, sanitize=sanitize)
    count = [0]
    cliques: Optional[List[frozenset]] = [] if store is not None else None

    def sink(clique: frozenset) -> None:
        count[0] += 1
        if cliques is not None:
            cliques.append(clique)

    enumerator = PivotEnumerator(graph, k, eta, config, on_clique=sink)
    start = time.perf_counter()
    extra: Dict[str, object] = {"sanitize": sanitize}
    violation_dict = None
    try:
        result = enumerator.run()
        stats = result.stats.as_dict()
    except SanitizerViolation as violation:
        stats = {}
        cliques = None  # partial output: never publish as the result set
        violation_dict = (
            violation.report.as_dict()
            if violation.report is not None
            else {"message": str(violation)}
        )
        extra["violation"] = violation_dict
    elapsed = time.perf_counter() - start
    record = stamped_record(
        label,
        elapsed,
        count[0],
        stats,
        extra=extra,
        backend=enumerator.backend_used,
        variant=enumerator.variant_used,
    )
    _persist(
        store, graph, k, eta, config, record, cliques,
        violation=violation_dict,
    )
    return record


def timed_parallel_enumeration(
    label: str,
    graph: UncertainGraph,
    k: int,
    eta,
    parts: int = 2,
    processes: Optional[int] = None,
    config: Optional[PivotConfig] = None,
    flight_dir: Optional[str] = None,
    store=None,
) -> RunRecord:
    """Time one multi-process enumeration, keeping the fleet view.

    The record's counters are the *merged* cross-worker stats; the
    per-shard breakdown and the imbalance/utilization summary of
    :func:`repro.obs.fleet.fleet_summary` land in ``extra`` (as
    ``shards`` / ``fleet``) so the fan-out survives into bench
    artifacts instead of collapsing to one summed row.  ``store`` is
    forwarded to :func:`~repro.core.partition.enumerate_parallel`,
    which keys the run under procedure ``peel/parts=N`` (parallel
    counters depend on the chunking).
    """
    from repro.core.config import PMUC_PLUS_CONFIG
    from repro.core.partition import enumerate_parallel

    if config is None:
        config = PMUC_PLUS_CONFIG
    start = time.perf_counter()
    result = enumerate_parallel(
        graph, k, eta,
        parts=parts, processes=processes, config=config,
        flight_dir=flight_dir, store=store,
    )
    elapsed = time.perf_counter() - start
    extra: Dict[str, object] = {
        "parts": parts,
        "shards": result.shards,
        "fleet": {
            key: value
            for key, value in sorted(result.fleet.items())
            if key != "metrics"
        },
    }
    if flight_dir is not None:
        extra["flight_dir"] = flight_dir
    return stamped_record(
        label,
        elapsed,
        len(result.cliques),
        result.stats.as_dict(),
        extra=extra,
    )


def peak_memory_bytes(action: Callable[[], object]) -> int:
    """Peak additional memory allocated while running ``action``."""
    tracemalloc.start()
    try:
        action()
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def format_table(rows: Sequence[Dict[str, object]], title: Optional[str] = None) -> str:
    """Render dict rows as an aligned text table (paper-style)."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {
        c: max(len(str(c)), *(len(_fmt(r.get(c))) for r in rows)) for c in columns
    }
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(str(c).ljust(widths[c]) for c in columns))
    lines.append("-+-".join("-" * widths[c] for c in columns))
    for row in rows:
        lines.append(
            " | ".join(_fmt(row.get(c)).ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines)


def print_table(rows: Sequence[Dict[str, object]], title: Optional[str] = None) -> None:
    """Print :func:`format_table` output."""
    print(format_table(rows, title))


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
