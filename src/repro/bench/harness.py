"""Shared experiment-harness utilities.

Runs configured enumerations under a timer, collects search statistics
and renders the row/series layout of the paper's tables and figures as
plain text, so every benchmark prints something directly comparable to
the published artifact.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.api import enumerate_maximal_cliques
from repro.core.config import PivotConfig
from repro.core.pmuc import PivotEnumerator
from repro.exceptions import SanitizerViolation
from repro.uncertain.graph import UncertainGraph


@dataclass
class RunRecord:
    """One timed enumeration run."""

    label: str
    seconds: float
    num_cliques: int
    stats: Dict[str, int] = field(default_factory=dict)
    extra: Dict[str, object] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        # Full precision: rows feed machine-readable artifacts (JSON
        # dumps, trajectory diffs); rounding happens only at
        # text-render time (``_fmt`` here / in bench.report).
        row: Dict[str, object] = {
            "run": self.label,
            "seconds": self.seconds,
            "cliques": self.num_cliques,
        }
        row.update({f"stat_{k}": v for k, v in self.stats.items()})
        row.update(self.extra)
        return row


def timed_enumeration(
    label: str, graph: UncertainGraph, k: int, eta, algorithm: str
) -> RunRecord:
    """Time one named-algorithm enumeration (discarding cliques)."""
    count = [0]

    def sink(_clique: frozenset) -> None:
        count[0] += 1

    start = time.perf_counter()
    result = enumerate_maximal_cliques(graph, k, eta, algorithm, on_clique=sink)
    elapsed = time.perf_counter() - start
    return RunRecord(label, elapsed, count[0], result.stats.as_dict())


def timed_config_enumeration(
    label: str,
    graph: UncertainGraph,
    k: int,
    eta,
    config: PivotConfig,
    sanitize: Optional[str] = None,
    obs: Optional[str] = None,
) -> RunRecord:
    """Time one :class:`PivotConfig`-driven enumeration.

    ``sanitize`` (``"off"``/``"light"``/``"full"``) overrides the
    config's sanitizer level for this run; checks then count toward the
    measured time, which is the point — the harness is how sanitizer
    overhead is quantified.  ``obs`` (``"off"``/``"metrics"``/
    ``"full"``) likewise overrides the observability level — the same
    mechanism quantifies observer overhead.
    """
    if sanitize is not None:
        config = replace(config, sanitize=sanitize)
    if obs is not None:
        config = replace(config, obs=obs)
    count = [0]

    def sink(_clique: frozenset) -> None:
        count[0] += 1

    enumerator = PivotEnumerator(graph, k, eta, config, on_clique=sink)
    start = time.perf_counter()
    result = enumerator.run()
    elapsed = time.perf_counter() - start
    # ``backend_used``, not ``config.backend``: the kernel silently
    # falls back to dict on unsupported inputs, and the row must say
    # what actually ran (the diff gate refuses cross-backend rows).
    return RunRecord(
        label,
        elapsed,
        count[0],
        result.stats.as_dict(),
        {"backend": enumerator.backend_used},
    )


def sanitized_config_enumeration(
    label: str,
    graph: UncertainGraph,
    k: int,
    eta,
    config: PivotConfig,
    sanitize: str = "full",
) -> RunRecord:
    """A sanitized run that records violations instead of raising.

    On a violation the record carries ``extra["violation"]`` (the
    serialized :class:`~repro.sanitize.report.ViolationReport` dict,
    replayable via :func:`repro.sanitize.replay`) and the clique count
    reached before the check fired.
    """
    config = replace(config, sanitize=sanitize)
    count = [0]

    def sink(_clique: frozenset) -> None:
        count[0] += 1

    enumerator = PivotEnumerator(graph, k, eta, config, on_clique=sink)
    start = time.perf_counter()
    extra: Dict[str, object] = {"sanitize": sanitize}
    try:
        result = enumerator.run()
        stats = result.stats.as_dict()
    except SanitizerViolation as violation:
        stats = {}
        extra["violation"] = (
            violation.report.as_dict()
            if violation.report is not None
            else str(violation)
        )
    elapsed = time.perf_counter() - start
    extra["backend"] = enumerator.backend_used
    return RunRecord(label, elapsed, count[0], stats, extra)


def peak_memory_bytes(action: Callable[[], object]) -> int:
    """Peak additional memory allocated while running ``action``."""
    tracemalloc.start()
    try:
        action()
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def format_table(rows: Sequence[Dict[str, object]], title: Optional[str] = None) -> str:
    """Render dict rows as an aligned text table (paper-style)."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {
        c: max(len(str(c)), *(len(_fmt(r.get(c))) for r in rows)) for c in columns
    }
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(str(c).ljust(widths[c]) for c in columns))
    lines.append("-+-".join("-" * widths[c] for c in columns))
    for row in rows:
        lines.append(
            " | ".join(_fmt(row.get(c)).ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines)


def print_table(rows: Sequence[Dict[str, object]], title: Optional[str] = None) -> None:
    """Print :func:`format_table` output."""
    print(format_table(rows, title))


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
