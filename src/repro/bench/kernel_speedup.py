"""Dict-vs-kernel backend speedup benchmark (perf trajectory artifact).

Produces the ``BENCH_pr<N>.json`` trajectory artifacts (currently
``BENCH_pr6.json``): wall-clock comparisons of the two
:class:`~repro.core.config.PivotConfig` backends on fixed synthetic
workloads, in a stable schema future PRs can extend with further
trajectory points.  Each record stamps the compiled recursion
``variants`` both backends executed (see
:func:`repro.engine.driver.variant_id`), so downstream tooling can
refuse cross-variant comparisons.

Measurement protocol — the numbers are CPU-noise-hardened:

* ``time.process_time`` (CPU time, immune to scheduler gaps);
* garbage collection disabled around each timed run;
* a streaming no-op sink so clique storage never enters the timing;
* backends run in **interleaved rounds with alternating order**, so
  drifting machine load hits both backends symmetrically;
* per-round **paired ratios** plus best-of-N per backend, since a
  single noisy round should not define the trajectory.

Every workload is also parity-checked (identical clique sets and
identical :class:`~repro.core.stats.SearchStats`) in an untimed pass,
so a recorded speedup can never come from diverging search trees.

Usage::

    PYTHONPATH=src python -m repro.bench.kernel_speedup --out BENCH_pr6.json
    PYTHONPATH=src python -m repro.bench.kernel_speedup --quick   # CI smoke
    PYTHONPATH=src python -m repro.bench.kernel_speedup \
        --workload communities-1000 --rounds 3   # one tier only
"""

from __future__ import annotations

import argparse
import gc
import json
import statistics
import time
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import format_table
from repro.core.config import PMUC_PLUS_CONFIG
from repro.core.pmuc import PivotEnumerator
from repro.datasets.random_graphs import planted_communities_weighted
from repro.datasets.registry import uncertain_from_weights
from repro.uncertain.graph import UncertainGraph

SCHEMA_VERSION = 1
SPEEDUP_TARGET = 2.0

#: Fixed workloads.  ``params`` feed ``planted_communities_weighted``
#: verbatim, so the graphs are reproducible from the JSON alone.
WORKLOADS = (
    {
        "name": "communities-300",
        "params": {
            "n": 300,
            "communities": 18,
            "community_size": 24,
            "overlap": 8,
            "p_in": 0.92,
            "p_out_edges": 500,
            "seed": 7,
        },
        "k": 8,
        "eta": 0.05,
    },
    {
        "name": "communities-1000",
        "params": {
            "n": 1000,
            "communities": 50,
            "community_size": 24,
            "overlap": 8,
            "p_in": 0.9,
            "p_out_edges": 1200,
            "seed": 11,
        },
        "k": 8,
        "eta": 0.05,
    },
    {
        "name": "blob-130",
        "params": {
            "n": 130,
            "communities": 1,
            "community_size": 130,
            "overlap": 0,
            "p_in": 0.55,
            "p_out_edges": 0,
            "seed": 3,
        },
        "k": 5,
        "eta": 0.3,
    },
    {
        "name": "communities-150",
        "params": {
            "n": 150,
            "communities": 9,
            "community_size": 24,
            "overlap": 8,
            "p_in": 0.92,
            "p_out_edges": 250,
            "seed": 7,
        },
        "k": 8,
        "eta": 0.05,
    },
    {
        "name": "communities-100",
        "params": {
            "n": 100,
            "communities": 6,
            "community_size": 20,
            "overlap": 6,
            "p_in": 0.9,
            "p_out_edges": 150,
            "seed": 7,
        },
        "k": 7,
        "eta": 0.05,
    },
)

#: The quick (CI smoke) subset must finish well under a minute.
QUICK_NAMES = ("communities-100",)


def build_graph(params: Dict[str, object]) -> UncertainGraph:
    """Materialise a workload graph from its generator parameters."""
    weights = planted_communities_weighted(**params)  # type: ignore[arg-type]
    return uncertain_from_weights(weights)


def timed_run_with_variant(
    graph: UncertainGraph,
    k: int,
    eta: float,
    backend: str,
    sanitize: str = "off",
    obs: str = "off",
) -> Tuple[float, Optional[str]]:
    """One timed enumeration; returns ``(CPU seconds, variant id)``.

    The variant id (:func:`repro.engine.driver.variant_id`) names the
    compiled recursion closure the timed run actually executed — it is
    stamped into every run record so ``repro.obs diff`` can refuse
    comparing e.g. a hooked variant's clock against the production
    closure's.
    """
    config = replace(
        PMUC_PLUS_CONFIG, backend=backend, sanitize=sanitize, obs=obs
    )
    enumerator = PivotEnumerator(
        graph, k=k, eta=eta, config=config, on_clique=lambda _c: None
    )
    gc.collect()
    gc.disable()
    try:
        start = time.process_time()
        enumerator.run()
        return time.process_time() - start, enumerator.variant_used
    finally:
        gc.enable()


def timed_run(
    graph: UncertainGraph,
    k: int,
    eta: float,
    backend: str,
    sanitize: str = "off",
    obs: str = "off",
) -> float:
    """One timed enumeration; returns CPU seconds."""
    return timed_run_with_variant(graph, k, eta, backend, sanitize, obs)[0]


def parity_check(
    graph: UncertainGraph, k: int, eta: float
) -> Dict[str, object]:
    """Untimed dict-vs-kernel run recording clique/stats equality.

    The full per-backend :class:`~repro.core.stats.EnumerationResult`
    objects ride along under ``"results"`` (not JSON-safe — stripped
    before the record is serialized) so the store persistence path can
    publish the parity runs without enumerating a third time.
    """
    results = {}
    for backend in ("dict", "kernel"):
        config = replace(PMUC_PLUS_CONFIG, backend=backend)
        results[backend] = PivotEnumerator(
            graph, k=k, eta=eta, config=config
        ).run()
    return {
        "cliques_equal": set(results["dict"].cliques)
        == set(results["kernel"].cliques),
        "stats_equal": results["dict"].stats.__dict__
        == results["kernel"].stats.__dict__,
        "outputs": results["dict"].stats.outputs,
        "results": results,
    }


def _persist_parity(
    store, graph, spec, parity, times
) -> Dict[str, str]:
    """Publish both backends' parity runs under their canonical keys.

    Benchmarks never *serve* timings from the store — the stored
    ``seconds`` is this invocation's best-of-rounds for the backend,
    published so cache-hitting consumers (sessions, the service) can
    reuse the verified clique set and counters.
    """
    from repro.store.key import graph_fingerprint, run_key_for
    from repro.store.records import stamped_record

    digests: Dict[str, str] = {}
    fingerprint = graph_fingerprint(graph)
    for backend, result in parity["results"].items():
        config = replace(PMUC_PLUS_CONFIG, backend=backend)
        key = run_key_for(
            graph, spec["k"], spec["eta"], config,
            dataset_fingerprint=fingerprint,
        )
        record = stamped_record(
            "speedup:%s" % spec["name"],
            min(times[backend]),
            len(result.cliques),
            result.stats.as_dict(),
            extra={
                "k": spec["k"],
                "eta": repr(spec["eta"]),
                "workload": spec["name"],
                "estimator": "best-of-rounds (process_time)",
            },
            backend=backend,
        )
        digests[backend] = store.put_run(
            key, record, cliques=result.cliques
        )
    return digests


def bench_workload(
    spec: Dict[str, object],
    rounds: int,
    sanitize: str = "off",
    obs: str = "off",
    store=None,
) -> Dict[str, object]:
    """Benchmark one workload spec; returns its JSON record."""
    graph = build_graph(spec["params"])  # type: ignore[index]
    k = spec["k"]
    eta = spec["eta"]
    times: Dict[str, List[float]] = {"dict": [], "kernel": []}
    variants: Dict[str, Optional[str]] = {"dict": None, "kernel": None}
    for rnd in range(rounds):
        order = ("dict", "kernel") if rnd % 2 == 0 else ("kernel", "dict")
        for backend in order:
            seconds, variant = timed_run_with_variant(
                graph, k, eta, backend, sanitize, obs
            )
            times[backend].append(seconds)
            variants[backend] = variant
    paired = sorted(
        d / kt for d, kt in zip(times["dict"], times["kernel"])
    )
    parity = parity_check(graph, k, eta)
    record: Dict[str, object] = {
        "name": spec["name"],
        "generator": "planted_communities_weighted",
        "params": spec["params"],
        "k": k,
        "eta": eta,
        "outputs": parity["outputs"],
        "variants": variants,
        "rounds_s": {
            backend: [round(s, 4) for s in series]
            for backend, series in times.items()
        },
        "best_s": {b: round(min(s), 4) for b, s in times.items()},
        "median_s": {
            b: round(statistics.median(s), 4) for b, s in times.items()
        },
        "paired_ratios": [round(r, 3) for r in paired],
        "speedup_best": round(
            min(times["dict"]) / min(times["kernel"]), 3
        ),
        "speedup_median": round(statistics.median(paired), 3),
        "speedup_max": round(paired[-1], 3),
        "parity": {
            "cliques_equal": parity["cliques_equal"],
            "stats_equal": parity["stats_equal"],
        },
    }
    if store is not None and parity["cliques_equal"]:
        record["store"] = _persist_parity(store, graph, spec, parity, times)
    return record


def run_benchmark(
    quick: bool = False,
    rounds: Optional[int] = None,
    sanitize: str = "off",
    obs: str = "off",
    workloads: Optional[Sequence[str]] = None,
    store=None,
) -> Dict[str, object]:
    """Run the full (or quick) suite; returns the JSON document.

    ``workloads`` restricts the run to the named subset (executed in
    registry order).  An explicit selection replaces the quick-mode
    name subset but keeps quick's round default.  ``store`` (a
    :class:`~repro.store.store.RunStore`) persists each parity-clean
    workload's verified runs under their canonical keys.
    """
    if rounds is None:
        rounds = 2 if quick else 7
    names = QUICK_NAMES if quick else tuple(w["name"] for w in WORKLOADS)
    if workloads is not None:
        known = {w["name"] for w in WORKLOADS}
        unknown = [n for n in workloads if n not in known]
        if unknown:
            raise ValueError(
                "unknown workload(s) %s; choose from %s"
                % (", ".join(unknown), ", ".join(sorted(known)))
            )
        names = tuple(set(workloads))
    records = [
        bench_workload(spec, rounds, sanitize, obs, store=store)
        for spec in WORKLOADS
        if spec["name"] in names
    ]
    # Headline estimator: best-of-N per backend (timeit-style min —
    # system noise only ever adds time, so min is the noise-robust
    # lower-bound estimate of true cost for both backends alike).
    best = max(r["speedup_best"] for r in records)
    best_median = max(r["speedup_median"] for r in records)
    from repro.store.records import document_stamp

    return {
        "schema_version": SCHEMA_VERSION,
        "bench": "kernel-backend-speedup",
        "pr": 6,
        "env": document_stamp(),
        "algorithm": "pmuc+",
        "backends": ["dict", "kernel"],
        "protocol": {
            "timer": "process_time",
            "rounds": rounds,
            "interleaved_alternating": True,
            "gc_disabled": True,
            "sink": "streaming-noop",
            "quick": quick,
            "sanitize": sanitize,
            "obs": obs,
        },
        "workloads": records,
        "summary": {
            "speedup_target": SPEEDUP_TARGET,
            "estimator": "best-of-rounds per backend (timeit-style min)",
            "best_speedup": best,
            "best_median_speedup": best_median,
            "target_met": best >= SPEEDUP_TARGET,
            "parity_ok": all(
                r["parity"]["cliques_equal"] and r["parity"]["stats_equal"]
                for r in records
            ),
        },
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.kernel_speedup",
        description="Benchmark the dict vs kernel enumeration backends.",
    )
    parser.add_argument(
        "--out", metavar="PATH", default=None, help="write JSON to PATH"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: smallest workload, 2 rounds, <60s",
    )
    parser.add_argument(
        "--rounds", type=int, default=None, help="override round count"
    )
    parser.add_argument(
        "--workload",
        action="append",
        dest="workloads",
        metavar="NAME",
        default=None,
        choices=tuple(w["name"] for w in WORKLOADS),
        help=(
            "run only this workload (repeatable); replaces the "
            "quick-mode subset when combined with --quick"
        ),
    )
    parser.add_argument(
        "--require",
        type=float,
        default=None,
        metavar="X",
        help="exit non-zero unless best speedup >= X",
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help=(
            "persist each parity-clean workload's verified runs (clique "
            "set + counters, best-of-rounds seconds) into the run store "
            "at DIR; with --out, the JSON document registers as an "
            "artifact of every stored run"
        ),
    )
    parser.add_argument(
        "--sanitize",
        choices=("off", "light", "full"),
        default="off",
        help=(
            "run the timed enumerations with the runtime sanitizer at "
            "this level (default: off); violations abort the benchmark"
        ),
    )
    parser.add_argument(
        "--obs",
        choices=("off", "light", "metrics", "full"),
        default="off",
        help=(
            "run the timed enumerations with the observability layer "
            "at this level (default: off); overhead counts toward the "
            "measured time, which is how observer cost is quantified"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help=(
            "print a live progress/ETA line to stderr while the timed "
            "enumerations run; implies --obs light unless --obs was "
            "given (progress rides the observer seam, so its cost "
            "counts toward the measured time like any obs level)"
        ),
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help=(
            "collect Chrome-trace JSONL across all observed runs into "
            "PATH (plus PATH.folded stacks and PATH.metrics.json); "
            "implies --obs full unless --obs was given"
        ),
    )
    args = parser.parse_args(argv)
    if args.rounds is not None and args.rounds < 1:
        parser.error("--rounds must be at least 1")
    store = None
    if args.store is not None:
        from repro.store.store import RunStore

        store = RunStore(args.store)
    if args.trace_out and args.obs == "off":
        args.obs = "full"
    if args.progress and args.obs == "off":
        args.obs = "light"
    if args.obs != "off":
        import sys

        from repro.obs.session import observe

        progress = None
        if args.progress:
            from repro.obs.progress import ProgressTracker

            progress = ProgressTracker(
                stream=sys.stderr, label="kernel_speedup"
            )
        with observe(
            trace_path=args.trace_out,
            folded_path=(
                f"{args.trace_out}.folded" if args.trace_out else None
            ),
            metrics_path=(
                f"{args.trace_out}.metrics.json" if args.trace_out else None
            ),
            progress=progress,
        ):
            document = run_benchmark(
                quick=args.quick,
                rounds=args.rounds,
                sanitize=args.sanitize,
                obs=args.obs,
                workloads=args.workloads,
                store=store,
            )
        if args.trace_out:
            print(
                f"wrote trace to {args.trace_out} (summarize with "
                f"'python -m repro.obs report {args.trace_out}')"
            )
    else:
        document = run_benchmark(
            quick=args.quick,
            rounds=args.rounds,
            sanitize=args.sanitize,
            workloads=args.workloads,
            store=store,
        )
    rows = [
        {
            "workload": r["name"],
            "k": r["k"],
            "eta": r["eta"],
            "cliques": r["outputs"],
            "dict_best_s": r["best_s"]["dict"],
            "kernel_best_s": r["best_s"]["kernel"],
            "kernel_variant": r["variants"]["kernel"],
            "speedup_median": r["speedup_median"],
            "speedup_max": r["speedup_max"],
            "parity": "ok"
            if r["parity"]["cliques_equal"] and r["parity"]["stats_equal"]
            else "MISMATCH",
        }
        for r in document["workloads"]
    ]
    print(format_table(rows, title="dict vs kernel backend (pmuc+)"))
    summary = document["summary"]
    print(
        f"best speedup: {summary['best_speedup']}x best-of-rounds "
        f"({summary['best_median_speedup']}x median; "
        f"target {summary['speedup_target']}x, "
        f"met={summary['target_met']})"
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2, sort_keys=False)
            fh.write("\n")
        print(f"wrote {args.out}")
    if store is not None:
        digests = sorted(
            {
                digest
                for r in document["workloads"]
                for digest in r.get("store", {}).values()
            }
        )
        if args.out:
            for digest in digests:
                store.register_artifact(digest, args.out, args.out)
        print(
            "stored %d runs in %s: %s"
            % (
                len(digests),
                args.store,
                " ".join(d[:12] for d in digests),
            )
        )
    if not summary["parity_ok"]:
        print("PARITY MISMATCH between backends")
        return 1
    if (
        args.require is not None
        and summary["best_speedup"] < args.require
    ):
        print(f"speedup below required {args.require}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
