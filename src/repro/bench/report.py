"""Markdown report generation from experiment rows.

Turns the row dictionaries produced by :mod:`repro.bench.experiments`
into an EXPERIMENTS.md-style document: one section per experiment, a
GitHub-flavored markdown table per section, and (where both MUC and a
pivot algorithm appear) derived speedup columns — so a full
reproduction report is a single function call away.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Sequence

Row = Dict[str, object]


def to_json(sections: Mapping[str, Mapping[str, object]],
            indent: int = 2) -> str:
    """Serialize report sections as deterministic JSON.

    Takes the same ``{id: {"title": ..., "rows": [...]}}`` structure as
    :func:`render_report` (a single section works too), so every
    benchmark script can emit its table machine-readably next to the
    text rendering.  Values keep full precision — rounding is a
    text-rendering concern (see ``_fmt``) — and keys are sorted so two
    runs of the same experiment diff cleanly.
    """
    return json.dumps(
        sections, indent=indent, sort_keys=True, default=str
    ) + "\n"


def markdown_table(rows: Sequence[Row]) -> str:
    """Render dict rows as a GitHub-flavored markdown table."""
    if not rows:
        return "*(no rows)*\n"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    lines = [
        "| " + " | ".join(str(c) for c in columns) + " |",
        "|" + "|".join("---" for _ in columns) + "|",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(_fmt(row.get(c)) for c in columns) + " |"
        )
    return "\n".join(lines) + "\n"


def speedup_summary(
    rows: Sequence[Row],
    baseline: str = "muc",
    contender: str = "pmuc+",
    group_keys: Sequence[str] = ("dataset", "sweep", "k", "eta"),
) -> List[Row]:
    """Derive per-parameter-point speedups from Fig.-3-style rows.

    Pairs the ``baseline`` and ``contender`` rows of each parameter
    point and reports time and search-node ratios; points missing
    either side are skipped.
    """
    grouped: Dict[tuple, Dict[str, Row]] = {}
    for row in rows:
        algorithm = row.get("algorithm") or row.get("variant")
        key = tuple(row.get(k) for k in group_keys)
        grouped.setdefault(key, {})[str(algorithm)] = row
    summary: List[Row] = []
    for key, algorithms in sorted(grouped.items(), key=repr):
        base = algorithms.get(baseline)
        cont = algorithms.get(contender)
        if base is None or cont is None:
            continue
        entry: Row = dict(zip(group_keys, key))
        base_seconds = float(base.get("seconds") or 0.0)
        cont_seconds = float(cont.get("seconds") or 0.0)
        entry["speedup_time"] = (
            round(base_seconds / cont_seconds, 2) if cont_seconds else None
        )
        base_calls = base.get("calls")
        cont_calls = cont.get("calls")
        if base_calls and cont_calls:
            entry["speedup_calls"] = round(
                float(base_calls) / float(cont_calls), 2
            )
        summary.append(entry)
    return summary


def render_report(
    sections: Mapping[str, Mapping[str, object]],
    title: str = "Reproduction report",
    preamble: Optional[str] = None,
) -> str:
    """Render a full markdown report.

    ``sections`` maps an experiment id to ``{"title": ..., "rows":
    [...]}`` — exactly the structure the CLI's ``--json`` dump uses, so
    a report can be regenerated from a saved run::

        import json
        from repro.bench.report import render_report
        print(render_report(json.load(open("results.json"))))
    """
    parts = [f"# {title}", ""]
    if preamble:
        parts += [preamble, ""]
    for key in sorted(sections):
        section = sections[key]
        parts.append(f"## {section.get('title', key)}")
        parts.append("")
        rows = list(section.get("rows", []))
        parts.append(markdown_table(rows))
        derived = speedup_summary(rows)
        if derived:
            parts.append("**PMUC+ speedup over MUC:**")
            parts.append("")
            parts.append(markdown_table(derived))
    return "\n".join(parts)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value).replace("|", "\\|")
