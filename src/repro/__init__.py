"""repro — pivot-based maximal (k, η)-clique enumeration on uncertain graphs.

A complete, from-scratch reproduction of *"Fast Maximal Clique
Enumeration on Uncertain Graphs: A Pivot-based Approach"* (Dai, Li,
Liao, Chen, Wang — SIGMOD 2022):

* :mod:`repro.uncertain` — the uncertain-graph substrate (possible
  worlds, clique probability, I/O);
* :mod:`repro.core` — the ``MUC`` set-enumeration baseline and the
  pivot-based ``PMUC`` / ``PMUC+`` algorithms;
* :mod:`repro.hereditary` — the general pivot principle (Algorithm 2)
  for arbitrary hereditary properties;
* :mod:`repro.reduction` — the ``(Top_k, η)``-core and
  ``(Top_k, η)``-triangle graph reductions and vertex orderings;
* :mod:`repro.baselines` — UKCore / UKTruss / USCAN / PCluster used by
  the case studies;
* :mod:`repro.datasets` — seeded synthetic stand-ins for the paper's
  nine datasets;
* :mod:`repro.applications` — PPI clustering quality, community
  search, task-driven team formation;
* :mod:`repro.bench` — the per-figure/table experiment harness.

Quickstart
----------
>>> from repro import UncertainGraph, enumerate_maximal_cliques
>>> g = UncertainGraph([(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9)])
>>> result = enumerate_maximal_cliques(g, k=3, eta=0.5)
>>> sorted(result.cliques[0])
[0, 1, 2]
"""

from repro.exceptions import (
    DatasetError,
    GraphError,
    InvalidProbabilityError,
    ParameterError,
    ReproError,
)
from repro.uncertain import (
    UncertainGraph,
    clique_probability,
    is_eta_clique,
    is_maximal_k_eta_clique,
    read_edge_list,
    write_edge_list,
)
from repro.core import (
    DynamicCliqueIndex,
    EnumerationResult,
    PivotConfig,
    PivotEnumerator,
    SearchStats,
    enumerate_maximal_cliques,
    maximal_clique_counts,
    maximum_eta_clique,
    maximum_k_eta_clique,
    muc,
    pmuc,
    pmuc_plus,
    top_r_maximal_cliques,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "GraphError",
    "InvalidProbabilityError",
    "ParameterError",
    "DatasetError",
    "UncertainGraph",
    "clique_probability",
    "is_eta_clique",
    "is_maximal_k_eta_clique",
    "read_edge_list",
    "write_edge_list",
    "EnumerationResult",
    "SearchStats",
    "PivotConfig",
    "PivotEnumerator",
    "enumerate_maximal_cliques",
    "maximal_clique_counts",
    "maximum_eta_clique",
    "DynamicCliqueIndex",
    "maximum_k_eta_clique",
    "top_r_maximal_cliques",
    "muc",
    "pmuc",
    "pmuc_plus",
    "__version__",
]
