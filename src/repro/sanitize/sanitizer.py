"""The runtime sanitizer: in-flight invariant checks for the enumerators.

Both enumeration backends call the same small hook protocol from inside
their recursions (``on_node`` / ``on_emit`` / ``on_cover``) and around
them (``on_reduced`` / ``on_context`` / ``on_finish``); the
:class:`Sanitizer` behind the hooks asserts the paper's dynamic
correctness properties as the search runs:

========  ====================  =========================================
check     name                  invariant
========  ====================  =========================================
``S1``    eta-clique            every emitted set is a (k, η)-clique,
                                recomputed from the *original* graph with
                                an exact guard-banded verdict
``S2``    maximality-dedup      emitted sets are maximal (single-vertex
                                extension test) and never repeated
                                (streaming dedup)
``S3``    pivot-cover           at every M-pivot stop, the claimed
                                periphery ``Q`` is an η-clique containing
                                ``R`` and every skipped candidate
                                (Theorem 4.2's cover condition)
``S4``    numeric-drift         the backend's accumulated probability
                                (dict: ``Pr(R)``; kernel: ``-log Pr(R)``)
                                matches a recomputation at each emission
``S5``    reduction-safety      a completed run over a small graph is
                                cross-checked against a shadow unreduced
                                ``muc-basic`` run
========  ====================  =========================================

Levels: ``light`` checks S1/S2/S4 on every emission and S3 only at
stops whose node emitted something; ``full`` additionally checks S3 at
every stop, validates the pivot coloring, and runs the S5 shadow.

A failed check raises :class:`~repro.exceptions.SanitizerViolation`
carrying a :class:`~repro.sanitize.report.ViolationReport` with the
recursion path serialized for :func:`replay`.
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Dict, List, Optional

from repro.exceptions import ParameterError
from repro.core.config import SANITIZE_CHOICES, PMUC_PLUS_CONFIG
from repro.core.pivot import improper_coloring_pairs
from repro.reduction import reduction_victims
from repro.sanitize.checks import (
    drift_message,
    eta_verdict,
    find_extension,
    is_eta_clique_checked,
    reference_probability,
)
from repro.sanitize.dedup import CliqueStreamIndex, clique_key
from repro.sanitize.report import ViolationReport, fail

#: Shadow-run ceiling for S5: the unreduced ``muc-basic`` reference is
#: exponential in the worst case, so the cross-check only fires on
#: graphs where it is certainly cheap (every tier-1 fixture qualifies).
SHADOW_MAX_VERTICES = 64
SHADOW_MAX_EDGES = 512

#: Cover-cache ceiling: η-clique verdicts for periphery sets are heavily
#: repeated (the same ``Q`` covers many stops), but the cache must not
#: grow without bound on huge runs.
_COVER_CACHE_MAX = 65536

#: Non-zero while an S5 shadow run is executing; makes
#: :func:`build_sanitizer` return None so the shadow cannot recursively
#: sanitize (and shadow) itself under ``REPRO_SANITIZE=full``.
_shadow_depth = 0


def resolve_level(config) -> str:
    """The effective sanitize level for ``config``.

    The ``REPRO_SANITIZE`` environment variable applies only when the
    config leaves the level at ``"off"`` — an explicit
    ``PivotConfig(sanitize=...)`` always wins, so tests and benchmarks
    can pin a level regardless of the CI environment.
    """
    level = getattr(config, "sanitize", "off")
    if level == "off":
        env = os.environ.get("REPRO_SANITIZE", "").strip()
        if env:
            level = env
            if level not in SANITIZE_CHOICES:
                raise ParameterError(
                    f"REPRO_SANITIZE must be one of {SANITIZE_CHOICES}, "
                    f"got {level!r}"
                )
    return level


def build_sanitizer(graph, k, eta, config, backend: str = "dict"):
    """A :class:`Sanitizer` for this run, or None when disabled."""
    if _shadow_depth:
        return None
    level = resolve_level(config)
    if level == "off":
        return None
    return Sanitizer(graph, k, eta, level=level, backend=backend)


class Sanitizer:
    """Receives enumeration hooks and asserts invariants S1–S5.

    All checks run against the **original** (unreduced) ``graph``:
    emitted cliques must be η-cliques and maximal in the input the user
    asked about, which folds the most common reduction bugs into the
    cheap S1/S2 checks; S5 catches the rest (whole cliques silently
    dropped by over-pruning).
    """

    def __init__(self, graph, k: int, eta, level: str, backend: str):
        if level not in SANITIZE_CHOICES or level == "off":
            raise ParameterError(
                f"sanitize level must be 'light' or 'full', got {level!r}"
            )
        self._graph = graph
        self._k = k
        self._eta = eta
        self.level = level
        self._backend = backend
        self._emitted = CliqueStreamIndex()
        self._entry_emitted: Dict[int, int] = {}
        self._cover_cache: Dict[frozenset, bool] = {}
        self._survivors: Optional[List] = None
        #: How many times each check actually ran (surfaced by the
        #: bench harness so "zero violations" is distinguishable from
        #: "zero checks").
        self.checks_run = {c: 0 for c in ("S1", "S2", "S3", "S4", "S5")}

    # -- lifecycle hooks (outside the recursions) ----------------------
    def on_reduced(self, vertices) -> None:
        """Record the vertices that survived graph reduction (for S5)."""
        self._survivors = list(vertices)

    def on_context(self, color, edges) -> None:
        """Validate the pivot coloring over the backbone edges.

        The color K-pivot bound (Lemma 6) counts color classes as a
        clique-size upper bound, which is only sound for a *proper*
        coloring; an improper one silently over-prunes.  Full level
        only — the check is linear in the edge count.
        """
        if self.level != "full":
            return
        self.checks_run["S3"] += 1
        bad = improper_coloring_pairs(color, edges)
        if bad:
            u, v = bad[0]
            fail(
                "S3",
                f"pivot coloring is improper: edge ({u!r}, {v!r}) is "
                f"monochromatic ({len(bad)} such edge(s))",
                (),
                self._k,
                self._eta,
                self.level,
                self._backend,
                kind="coloring",
                monochromatic_edges=len(bad),
            )

    def on_finish(self, complete: bool) -> None:
        """S5: cross-check a completed run against an unreduced shadow.

        Only meaningful when the run visited every seed and was not
        truncated by a limit (``complete``), and only affordable on
        small graphs; otherwise the hook is a no-op.
        """
        if self.level != "full" or not complete:
            return
        g = self._graph
        if (
            g.num_vertices > SHADOW_MAX_VERTICES
            or g.num_edges > SHADOW_MAX_EDGES
        ):
            return
        self.checks_run["S5"] += 1
        truth = _shadow_cliques(g, self._k, self._eta)
        emitted = self._emitted.seen()
        missing = sorted(truth - emitted, key=repr)
        spurious = sorted(emitted - truth, key=repr)
        if missing or spurious:
            witness = missing[0] if missing else spurious[0]
            fail(
                "S5",
                f"run disagrees with the unreduced shadow: "
                f"{len(missing)} clique(s) missing, "
                f"{len(spurious)} spurious; first "
                f"{'missing' if missing else 'spurious'} clique "
                f"{sorted(witness, key=repr)!r}",
                clique_key(witness),
                self._k,
                self._eta,
                self.level,
                self._backend,
                missing=[list(clique_key(c)) for c in missing[:10]],
                spurious=[list(clique_key(c)) for c in spurious[:10]],
                pruned_vertices=(
                    None
                    if self._survivors is None
                    else reduction_victims(g, self._survivors)
                ),
            )

    # -- recursion hooks (REP007-mirrored between backends) ------------
    def on_node(self, depth: int) -> None:
        """Entering a recursion node at ``depth``."""
        self._entry_emitted[depth] = len(self._emitted)

    def on_emit(self, r, value, log_domain: bool) -> None:
        """An emission of the clique ``R``: checks S1, S4 and S2.

        ``r`` is the recursion path in expansion order; ``value`` is
        the backend's accumulated probability for it — the threaded
        ``q = Pr(R)`` on the dict backend, ``nlq = -log Pr(R)`` on the
        kernel (``log_domain=True``).
        """
        members = list(r)
        path = tuple(members)
        k = self._k
        eta = self._eta
        level = self.level
        backend = self._backend
        self.checks_run["S1"] += 1
        if len(members) < k or len(set(members)) != len(members):
            fail(
                "S1",
                f"emitted set is not a valid k-set: {len(members)} "
                f"member(s), k={k}",
                path,
                k, eta, level, backend,
            )
        ref, exact = reference_probability(self._graph, members)
        if not eta_verdict(ref, exact, self._graph, members, eta):
            fail(
                "S1",
                "emitted set is not an eta-clique: recomputed "
                f"probability {float(ref)!r} < eta",
                path,
                k, eta, level, backend,
                probability=ref,
            )
        self.checks_run["S4"] += 1
        drift = drift_message(ref, exact, value, log_domain)
        if drift is not None:
            fail(
                "S4", drift, path, k, eta, level, backend,
                accumulated=value,
                log_domain=log_domain,
            )
        self.checks_run["S2"] += 1
        outcome = self._emitted.add(frozenset(members))
        if outcome.duplicate:
            fail(
                "S2",
                "clique emitted more than once",
                path,
                k, eta, level, backend,
            )
        extension = find_extension(self._graph, members, eta)
        if extension is not None:
            fail(
                "S2",
                f"emitted clique is not maximal: extensible by "
                f"{extension!r}",
                path,
                k, eta, level, backend,
                extension=extension,
            )

    def on_cover(self, depth: int, r, unexpanded, periphery) -> None:
        """An M-pivot stop: every remaining candidate sits in ``Q``.

        On ``light``, the cover is validated only when the stopping
        node's subtree emitted at least one clique (``on_node``
        snapshots the emission count per depth; the search is a DFS,
        so the snapshot at ``depth`` always belongs to the current
        node); ``full`` validates every stop.
        """
        if not unexpanded:
            # Natural exhaustion of the candidate list (every candidate
            # was expanded — e.g. under mpivot=off the periphery stays
            # empty): nothing was skipped, so there is no cover claim
            # to verify and Theorem 4.2 is vacuous.
            return
        if self.level != "full" and len(self._emitted) == (
            self._entry_emitted.get(depth, 0)
        ):
            return
        self.checks_run["S3"] += 1
        path = tuple(r)
        k = self._k
        eta = self._eta
        cover = set(periphery)
        missing_r = [v for v in r if v not in cover]
        if missing_r:
            fail(
                "S3",
                f"periphery does not contain the recursion path: "
                f"missing {missing_r!r}",
                path,
                k, eta, self.level, self._backend,
                cover=sorted(cover, key=repr),
            )
        outside = [v for v in unexpanded if v not in cover]
        if outside:
            fail(
                "S3",
                f"skipped candidates fall outside the periphery: "
                f"{outside!r}",
                path,
                k, eta, self.level, self._backend,
                cover=sorted(cover, key=repr),
            )
        key = frozenset(cover)
        verdict = self._cover_cache.get(key)
        if verdict is None:
            verdict = is_eta_clique_checked(
                self._graph, sorted(cover, key=repr), eta
            )
            if len(self._cover_cache) >= _COVER_CACHE_MAX:
                self._cover_cache.clear()
            self._cover_cache[key] = verdict
        if not verdict:
            fail(
                "S3",
                "claimed periphery is not an eta-clique (Theorem 4.2 "
                "cover condition violated)",
                path,
                k, eta, self.level, self._backend,
                cover=sorted(cover, key=repr),
            )


class IdSanitizer:
    """Kernel-side adapter: translates int ids to labels, then forwards.

    The kernel recursion works on rank ids; the wrapped
    :class:`Sanitizer` (shared with the dict backend) wants the
    original vertex labels, so every hook payload is mapped through the
    compact graph's ``labels`` table on the way in.
    """

    def __init__(self, inner: Sanitizer, labels):
        self._inner = inner
        self._labels = labels
        inner._backend = "kernel"

    @property
    def inner(self) -> Sanitizer:
        return self._inner

    def on_node(self, depth: int) -> None:
        self._inner.on_node(depth)

    def on_emit(self, r, value, log_domain: bool) -> None:
        labels = self._labels
        self._inner.on_emit([labels[i] for i in r], value, log_domain)

    def on_cover(self, depth: int, r, unexpanded, periphery) -> None:
        labels = self._labels
        self._inner.on_cover(
            depth,
            [labels[i] for i in r],
            [labels[i] for i in unexpanded],
            {labels[i] for i in periphery},
        )


def _shadow_cliques(graph, k, eta) -> set:
    """Unreduced reference result for S5 (recursion-guarded)."""
    global _shadow_depth
    from repro.core.api import enumerate_maximal_cliques

    _shadow_depth += 1
    try:
        result = enumerate_maximal_cliques(graph, k, eta, "muc-basic")
    finally:
        _shadow_depth -= 1
    return set(result.cliques)


def replay(graph, report: ViolationReport, config=None):
    """Re-run the subtree named by a violation report at ``full``.

    The report's recursion path starts at the outer-loop seed that
    roots the offending subtree, so re-running with ``seeds=[path[0]]``
    (same backend, sanitizer forced to ``full``) revisits just that
    part of the search — the violation reproduces in a fraction of the
    original run time.  Returns the :class:`EnumerationResult` when the
    violation does *not* reproduce (e.g. after a fix).
    """
    from repro.core.pmuc import PivotEnumerator

    base = config if config is not None else PMUC_PLUS_CONFIG
    cfg = replace(base, sanitize="full", backend=report.backend)
    enumerator = PivotEnumerator(graph, report.k, report.eta, cfg)
    seeds = [report.path[0]] if report.path else None
    return enumerator.run(seeds=seeds)
