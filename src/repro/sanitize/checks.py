"""Exact-verdict invariant predicates for the runtime sanitizer.

Recomputing every clique probability in pure :class:`~fractions.Fraction`
arithmetic would make ``--sanitize=full`` unusable (hundreds of
thousands of emissions × hundreds of exact multiplications, with
denominators growing without bound).  Instead every *verdict* here is
exact by the same guard-band discipline as the kernel backend's
``REL_GUARD``: float-probability inputs take a float fast path, and any
product landing inside a conservative relative band of the threshold is
replayed in exact ``Fraction`` arithmetic.  The accumulated float error
of a pairwise product is orders of magnitude below the band width, so
outside the band the float comparison provably agrees with the exact
one — the verdict is exact either way.  Non-float inputs (``Fraction``
graphs) skip the fast path entirely.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations
from math import log
from typing import List, Optional, Tuple

#: Relative half-width of the exact-replay band around ``eta``.
#: Pairwise float products of feasible clique sizes accumulate relative
#: error below ~1e-13; the band is four orders of magnitude wider.
CHECK_GUARD = 1e-9

#: Relative tolerance of the S4 drift check.  Legitimate accumulation
#: error (different multiplication order, log-domain add/sub residue)
#: stays below ~1e-12 relative; real tampering or a broken restore path
#: lands far above 1e-8.
DRIFT_TOL = 1e-8


def _as_exact(value):
    """Lift a float to an exact Fraction; exact types pass through."""
    return Fraction(value) if isinstance(value, float) else value


def exact_clique_probability(graph, members) -> Fraction:
    """``Pr(members)`` with every edge probability lifted to Fraction."""
    result = Fraction(1)
    for u, v in combinations(members, 2):
        p = graph.probability(u, v)
        if not p:
            return Fraction(0)
        result *= _as_exact(p)
    return result


def reference_probability(graph, members) -> Tuple[object, bool]:
    """Recompute ``Pr(members)`` from the graph: ``(value, exact)``.

    ``exact`` is True when the value is exactly representable (a
    missing-edge zero, or a product over non-float probabilities kept
    in exact arithmetic); otherwise ``value`` is the float fast-path
    product, to be interpreted through :func:`eta_verdict`.
    """
    probs: List[object] = []
    for u, v in combinations(members, 2):
        p = graph.probability(u, v)
        if not p:
            return 0, True
        probs.append(p)
    if all(isinstance(p, (float, int)) for p in probs):
        value = 1.0
        for p in probs:
            value *= p
        return value, False
    result = Fraction(1)
    for p in probs:
        result *= _as_exact(p)
    return result, True


def eta_verdict(value, exact: bool, graph, members, eta) -> bool:
    """Exact verdict of ``Pr(members) >= eta`` given a reference value.

    ``value``/``exact`` come from :func:`reference_probability`.  A
    float value inside the ``CHECK_GUARD`` band of ``eta`` is replayed
    in Fraction arithmetic; outside the band (and for exact values —
    Python compares Fraction to float exactly) the comparison is
    already exact.
    """
    if exact or not isinstance(eta, float):
        return value >= eta
    if abs(value - eta) <= CHECK_GUARD * eta:
        return exact_clique_probability(graph, members) >= Fraction(eta)
    return value >= eta


def is_eta_clique_checked(graph, members, eta) -> bool:
    """Exact η-clique verdict (guard-banded fast path)."""
    value, exact = reference_probability(graph, members)
    return eta_verdict(value, exact, graph, members, eta)


def find_extension(graph, members, eta) -> Optional[object]:
    """A vertex extending ``members`` to a larger η-clique, or None.

    The existence verdict is exact (each candidate goes through
    :func:`is_eta_clique_checked`); candidates are probed in
    deterministic sorted order so a violation always names the same
    witness.  Only common neighbors of all members can extend a clique,
    and the probe starts from the smallest neighborhood.
    """
    members = list(members)
    if not members:
        return None
    neighbors = graph.neighbors
    base = min(members, key=lambda v: len(neighbors(v)))
    member_set = set(members)
    others = [v for v in members if v != base]
    candidates = [
        w
        for w in sorted(neighbors(base), key=repr)
        if w not in member_set
        and all(w in neighbors(v) for v in others)
    ]
    for w in candidates:
        if is_eta_clique_checked(graph, members + [w], eta):
            return w
    return None


def drift_message(
    reference, exact: bool, value, log_domain: bool
) -> Optional[str]:
    """Describe S4 drift of an accumulated ``value``, or None if sound.

    ``reference``/``exact`` come from :func:`reference_probability` for
    the emitted members.  Kernel emissions pass ``log_domain=True``
    with ``value = -log Pr(R)`` as accumulated by the recursion; dict
    emissions pass the threaded probability itself.  Exact (Fraction)
    accumulations must match the recomputation exactly — products are
    order-independent in exact arithmetic — while float accumulations
    get ``DRIFT_TOL`` of relative slack for order-of-evaluation ulps.
    """
    if log_domain:
        ref_float = float(reference)
        expected = -log(ref_float) if ref_float < 1.0 else 0.0
        if abs(value - expected) > DRIFT_TOL * (1.0 + abs(expected)):
            return (
                f"accumulated -log probability {value!r} drifts from "
                f"recomputed {expected!r}"
            )
        return None
    if exact and not isinstance(value, float):
        if value != reference:
            return (
                f"accumulated exact probability {value!r} != "
                f"recomputed {reference!r}"
            )
        return None
    value_float = float(value)
    ref_float = float(reference)
    if abs(value_float - ref_float) > DRIFT_TOL * max(ref_float, 1e-300):
        return (
            f"accumulated probability {value_float!r} drifts from "
            f"recomputed {ref_float!r}"
        )
    return None
