"""Acceptance driver: sanitized runs over the standard workloads.

``python -m repro.sanitize`` runs the Figure-1 graph and (unless
``--quick``) the ``repro.bench.kernel_speedup`` workloads on **both**
backends with the sanitizer at the requested level, reporting per-run
check counts.  Exit status 1 on the first violation (the serialized
report is printed for replay), 0 when everything passes.

With ``--store DIR`` every run persists into the run store at ``DIR``
under its canonical :class:`~repro.store.key.RunKey`: clean runs store
their clique set and counters; a violating run stores the serialized
:class:`~repro.sanitize.report.ViolationReport` instead (replayable
via ``repro.sanitize.replay`` after ``repro-store query show``).
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace

from repro.bench.kernel_speedup import WORKLOADS, build_graph
from repro.core.config import PMUC_PLUS_CONFIG, SANITIZE_CHOICES
from repro.core.pmuc import PivotEnumerator
from repro.datasets.figure1 import figure1_graph
from repro.exceptions import SanitizerViolation


def _persist(store, graph, k, eta, config, record, cliques, violation):
    from repro.store.key import run_key_for

    key = run_key_for(graph, k, eta, config)
    return store.put_run(key, record, cliques=cliques, violation=violation)


def _run(name, graph, k, eta, backend, level, store=None) -> bool:
    config = replace(PMUC_PLUS_CONFIG, backend=backend, sanitize=level)
    enumerator = PivotEnumerator(graph, k, eta, config)
    start = time.perf_counter()
    try:
        result = enumerator.run()
    except SanitizerViolation as violation:
        seconds = time.perf_counter() - start
        print(f"FAIL {name} [{backend}]: {violation}")
        if violation.report is not None:
            print(violation.report.to_json())
        if store is not None:
            from repro.store.records import stamped_record

            report = (
                violation.report.as_dict()
                if violation.report is not None
                else {"message": str(violation)}
            )
            digest = _persist(
                store, graph, k, eta, config,
                stamped_record(
                    "sanitize:%s" % name,
                    seconds,
                    0,
                    extra={"k": k, "eta": repr(eta), "violation": report},
                    backend=enumerator.backend_used,
                    variant=enumerator.variant_used,
                ),
                cliques=None,
                violation=report,
            )
            print(f"     stored violation report as {digest[:12]}")
        return False
    seconds = time.perf_counter() - start
    print(
        f"ok   {name} [{backend}]: {result.stats.outputs} cliques, "
        f"{seconds:.2f}s"
    )
    if store is not None:
        from repro.store.records import stamped_record

        _persist(
            store, graph, k, eta, config,
            stamped_record(
                "sanitize:%s" % name,
                seconds,
                len(result.cliques),
                result.stats.as_dict(),
                extra={"k": k, "eta": repr(eta), "sanitize": level},
                backend=enumerator.backend_used,
                variant=enumerator.variant_used,
            ),
            cliques=result.cliques,
            violation=None,
        )
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitize", description=__doc__
    )
    parser.add_argument(
        "--sanitize",
        choices=[c for c in SANITIZE_CHOICES if c != "off"],
        default="full",
        help="sanitizer level for every run (default: full)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="Figure-1 graph only (skip the benchmark workloads)",
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="persist every run (and any violation report) to the run "
        "store at DIR",
    )
    args = parser.parse_args(argv)
    store = None
    if args.store is not None:
        from repro.store.store import RunStore

        store = RunStore(args.store)

    jobs = [("figure1", figure1_graph(), 3, 0.1)]
    if not args.quick:
        for spec in WORKLOADS:
            graph = build_graph(spec["params"])
            jobs.append((spec["name"], graph, spec["k"], spec["eta"]))

    ok = True
    for name, graph, k, eta in jobs:
        for backend in ("dict", "kernel"):
            ok = _run(name, graph, k, eta, backend, args.sanitize, store) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
