"""Acceptance driver: sanitized runs over the standard workloads.

``python -m repro.sanitize`` runs the Figure-1 graph and (unless
``--quick``) the ``repro.bench.kernel_speedup`` workloads on **both**
backends with the sanitizer at the requested level, reporting per-run
check counts.  Exit status 1 on the first violation (the serialized
report is printed for replay), 0 when everything passes.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace

from repro.bench.kernel_speedup import WORKLOADS, build_graph
from repro.core.config import PMUC_PLUS_CONFIG, SANITIZE_CHOICES
from repro.core.pmuc import PivotEnumerator
from repro.datasets.figure1 import figure1_graph
from repro.exceptions import SanitizerViolation


def _run(name, graph, k, eta, backend, level) -> bool:
    config = replace(PMUC_PLUS_CONFIG, backend=backend, sanitize=level)
    start = time.perf_counter()
    try:
        result = PivotEnumerator(graph, k, eta, config).run()
    except SanitizerViolation as violation:
        print(f"FAIL {name} [{backend}]: {violation}")
        if violation.report is not None:
            print(violation.report.to_json())
        return False
    seconds = time.perf_counter() - start
    print(
        f"ok   {name} [{backend}]: {result.stats.outputs} cliques, "
        f"{seconds:.2f}s"
    )
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitize", description=__doc__
    )
    parser.add_argument(
        "--sanitize",
        choices=[c for c in SANITIZE_CHOICES if c != "off"],
        default="full",
        help="sanitizer level for every run (default: full)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="Figure-1 graph only (skip the benchmark workloads)",
    )
    args = parser.parse_args(argv)

    jobs = [("figure1", figure1_graph(), 3, 0.1)]
    if not args.quick:
        for spec in WORKLOADS:
            graph = build_graph(spec["params"])
            jobs.append((spec["name"], graph, spec["k"], spec["eta"]))

    ok = True
    for name, graph, k, eta in jobs:
        for backend in ("dict", "kernel"):
            ok = _run(name, graph, k, eta, backend, args.sanitize) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
