"""Streaming duplicate / containment index over emitted cliques.

One index serves two consumers with very different budgets:

* the runtime sanitizer's **S2** check — duplicate detection only, on
  every emission of a live run, so ``add`` must stay O(|clique|);
* :func:`repro.core.verify.verify_enumeration` — duplicates *and*
  nested (subset/superset) pairs, replacing its historical O(n²)
  all-pairs scan with inverted indexes probed per clique.

Duplicate detection hashes the ``frozenset`` itself (content-based, so
no canonical sort is needed).  Containment, when enabled, keys two
inverted indexes on the clique's **sorted-key anchor** — its minimum
member under the deterministic ``repr`` order used everywhere else in
this repo:

* ``_by_vertex[v]`` — cliques containing ``v``.  A new clique's
  *supersets* all contain its anchor member, so probing the smallest
  member bucket suffices.
* ``_by_anchor[v]`` — cliques whose anchor is ``v``.  A new clique's
  *subsets* each have their anchor inside the new clique, so only the
  buckets of the new clique's own members can hold them.

Both probes touch only cliques sharing a member with the probe clique;
for clique collections with bounded per-vertex multiplicity that is
near-linear overall, against the quadratic pairwise scan it replaces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Tuple


def clique_key(clique: Iterable) -> Tuple:
    """Canonical sorted-tuple key of a clique (deterministic order).

    Sorting by ``repr`` keeps mixed, non-comparable vertex types
    deterministic — the same fallback as ``normalize_edge``.
    """
    return tuple(sorted(clique, key=repr))


@dataclass(frozen=True)
class AddOutcome:
    """What :meth:`CliqueStreamIndex.add` learned about one clique."""

    duplicate: bool
    supersets: Tuple[FrozenSet, ...] = ()
    subsets: Tuple[FrozenSet, ...] = ()


class CliqueStreamIndex:
    """Incremental dedup (and optional containment) over a clique stream.

    Parameters
    ----------
    track_containment:
        When True, :meth:`add` also reports previously-registered
        proper supersets and subsets of the new clique (used by
        ``verify_enumeration``).  The sanitizer leaves this off: a
        nested emission is necessarily non-maximal and is already
        caught by the S2 extension test.
    """

    def __init__(self, track_containment: bool = False):
        self._track = track_containment
        self._seen: set = set()
        self._by_vertex: Dict[object, List[FrozenSet]] = {}
        self._by_anchor: Dict[object, List[FrozenSet]] = {}

    def __len__(self) -> int:
        return len(self._seen)

    def __contains__(self, clique) -> bool:
        return frozenset(clique) in self._seen

    def seen(self) -> set:
        """The registered cliques, as a set of frozensets (do not mutate)."""
        return self._seen

    def add(self, clique: FrozenSet) -> AddOutcome:
        """Register ``clique``; report duplication (and containment).

        A duplicate is reported but *not* re-registered, so each
        distinct clique participates in containment probes exactly
        once — mirroring the pairwise check this index replaces.
        """
        if clique in self._seen:
            return AddOutcome(duplicate=True)
        supersets: Tuple[FrozenSet, ...] = ()
        subsets: Tuple[FrozenSet, ...] = ()
        if self._track and clique:
            key = clique_key(clique)
            anchor = key[0]
            # Supersets all contain this clique's smallest *bucket*
            # member (any member works; the smallest bucket bounds the
            # probe cost).
            probe = min(
                (self._by_vertex.get(v, ()) for v in key),
                key=len,
                default=(),
            )
            supersets = tuple(
                other for other in probe if clique < other
            )
            # Subsets have their own anchor inside this clique.
            subsets = tuple(
                other
                for v in key
                for other in self._by_anchor.get(v, ())
                if other < clique
            )
            for v in key:
                self._by_vertex.setdefault(v, []).append(clique)
            self._by_anchor.setdefault(anchor, []).append(clique)
        self._seen.add(clique)
        return AddOutcome(
            duplicate=False, supersets=supersets, subsets=subsets
        )
