"""Violation reports: what failed, where in the recursion, how to replay.

A sanitizer violation is useless if it cannot be reproduced without
re-running the whole enumeration, so every report serializes the
**recursion path** ``R`` (in insertion order — its first element is the
outer-loop seed vertex that roots the offending subtree).  Re-running
the same enumeration with ``seeds=[path[0]]`` and the sanitizer at
``full`` revisits only that subtree; :func:`repro.sanitize.replay`
wraps exactly that.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Tuple

from repro.exceptions import SanitizerViolation

#: check id -> short human name (mirrors the ISSUE/docs nomenclature).
CHECK_NAMES = {
    "S1": "eta-clique",
    "S2": "maximality-dedup",
    "S3": "pivot-cover",
    "S4": "numeric-drift",
    "S5": "reduction-safety",
}


def _plain(value):
    """JSON-safe scalar: numbers and strings pass, the rest go repr."""
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    if isinstance(value, Fraction):
        return str(value)
    return repr(value)


@dataclass(frozen=True)
class ViolationReport:
    """One invariant violation, with replay context.

    ``path`` is the recursion path ``R`` at the violation site in
    insertion order; ``detail`` carries check-specific extras (the
    inadmissible extension vertex, the drift magnitudes, …).
    """

    check: str
    message: str
    path: Tuple
    k: int
    eta: object
    level: str
    backend: str
    detail: Dict[str, object] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return CHECK_NAMES.get(self.check, self.check)

    def as_dict(self) -> dict:
        return {
            "check": self.check,
            "name": self.name,
            "message": self.message,
            "path": [_plain(v) for v in self.path],
            "k": self.k,
            "eta": _plain(self.eta),
            "level": self.level,
            "backend": self.backend,
            "detail": {key: _plain(v) for key, v in self.detail.items()},
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ViolationReport":
        """Rebuild a report from :meth:`to_json` output.

        Vertex labels survive when they are JSON scalars (ints,
        strings — every label type this repo's datasets produce); an
        ``eta`` serialized from a :class:`~fractions.Fraction` comes
        back exact.
        """
        raw = json.loads(text)
        eta = raw["eta"]
        if isinstance(eta, str) and "/" in eta:
            eta = Fraction(eta)
        return cls(
            check=raw["check"],
            message=raw["message"],
            path=tuple(raw["path"]),
            k=raw["k"],
            eta=eta,
            level=raw["level"],
            backend=raw["backend"],
            detail=dict(raw.get("detail", {})),
        )


def fail(
    check: str,
    message: str,
    path,
    k: int,
    eta,
    level: str,
    backend: str,
    **detail,
) -> "None":
    """Build the report and raise :class:`SanitizerViolation`."""
    report = ViolationReport(
        check=check,
        message=message,
        path=tuple(path),
        k=k,
        eta=eta,
        level=level,
        backend=backend,
        detail=detail,
    )
    raise SanitizerViolation(
        f"{check} ({report.name}): {message} "
        f"[recursion path {list(report.path)!r}]",
        report,
    )
