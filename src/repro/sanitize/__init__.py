"""repro-san: runtime invariant sanitizer for the enumeration stack.

Activate with ``PivotConfig(sanitize="light"|"full")``, the
``--sanitize`` flag of the CLI / benchmarks, or the ``REPRO_SANITIZE``
environment variable (which applies when the config leaves the level at
``"off"``).  See :mod:`repro.sanitize.sanitizer` for the check
catalogue and ``docs/analysis.md`` for the workflow.
"""

from repro.exceptions import SanitizerViolation
from repro.sanitize.checks import (
    CHECK_GUARD,
    DRIFT_TOL,
    exact_clique_probability,
    find_extension,
    is_eta_clique_checked,
    reference_probability,
)
from repro.sanitize.dedup import AddOutcome, CliqueStreamIndex, clique_key
from repro.sanitize.report import CHECK_NAMES, ViolationReport
from repro.sanitize.sanitizer import (
    IdSanitizer,
    Sanitizer,
    build_sanitizer,
    replay,
    resolve_level,
)

__all__ = [
    "AddOutcome",
    "CHECK_GUARD",
    "CHECK_NAMES",
    "CliqueStreamIndex",
    "DRIFT_TOL",
    "IdSanitizer",
    "Sanitizer",
    "SanitizerViolation",
    "ViolationReport",
    "build_sanitizer",
    "clique_key",
    "exact_clique_probability",
    "find_extension",
    "is_eta_clique_checked",
    "reference_probability",
    "replay",
    "resolve_level",
]
