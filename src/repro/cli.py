"""Command-line entry point: run any paper experiment and print its table.

Usage::

    repro-bench table1
    repro-bench fig3 --datasets enron soflow --ks 6 8 --quick
    repro-bench all --quick

``--quick`` shrinks the parameter grids so every experiment finishes in
seconds (useful for CI and for a first look); without it the default
scaled grids are used.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, List, Optional

from repro.bench import (
    experiment_ablation,
    experiment_fig3,
    experiment_fig4,
    experiment_fig5,
    experiment_fig6_fig7,
    experiment_fig8,
    experiment_fig9,
    experiment_fig10,
    experiment_fig11,
    experiment_table1,
    experiment_table2,
    experiment_table3,
    print_table,
)

_QUICK_KS = (4, 6)
_QUICK_ETAS = (0.05, 0.1)
_QUICK_DATASETS = ("enron", "soflow")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Reproduce the tables and figures of the SIGMOD'22 "
        "pivot-based uncertain-clique paper on synthetic stand-ins.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment to run (table/figure id) or 'all'",
    )
    parser.add_argument("--seed", type=int, default=0, help="dataset seed")
    parser.add_argument(
        "--quick", action="store_true", help="use a reduced parameter grid"
    )
    parser.add_argument(
        "--datasets", nargs="*", default=None, help="dataset names (fig3 only)"
    )
    parser.add_argument("--ks", nargs="*", type=int, default=None, help="k grid")
    parser.add_argument(
        "--etas", nargs="*", type=float, default=None, help="eta grid"
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write all result rows to PATH as JSON",
    )
    parser.add_argument(
        "--markdown",
        metavar="PATH",
        default=None,
        help="also write a rendered markdown report to PATH",
    )
    parser.add_argument(
        "--backend",
        choices=("dict", "kernel"),
        default=None,
        help=(
            "force the enumeration backend for every config that does "
            "not pin one explicitly (see docs/architecture.md); the "
            "default honors the REPRO_BACKEND environment variable"
        ),
    )
    parser.add_argument(
        "--sanitize",
        choices=("off", "light", "full"),
        default="off",
        help=(
            "enable the runtime invariant sanitizer for every "
            "enumeration in the experiment (see docs/analysis.md); a "
            "violation aborts with a replayable report"
        ),
    )
    parser.add_argument(
        "--obs",
        choices=("off", "light", "metrics", "full"),
        default="off",
        help=(
            "enable the observability layer for every enumeration in "
            "the experiment (see docs/observability.md); 'light' keeps "
            "counters/gauges only, 'full' adds trace spans and sampled "
            "stacks on top of metrics"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help=(
            "print a live progress/ETA line to stderr while each "
            "enumeration runs; implies --obs light unless --obs was "
            "given"
        ),
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help=(
            "write the combined Chrome-trace JSONL to PATH (plus the "
            "folded stacks to PATH.folded and the metrics document to "
            "PATH.metrics.json); implies --obs full unless --obs was "
            "given"
        ),
    )
    args = parser.parse_args(argv)
    if args.backend is not None:
        # PivotConfig reads REPRO_BACKEND at construction time, so the
        # override reaches every config the experiments build that does
        # not pin a backend explicitly.
        os.environ["REPRO_BACKEND"] = args.backend
    if args.sanitize != "off":
        # Experiments build their PivotConfigs internally; the
        # environment override reaches them all without threading a
        # parameter through every experiment signature.
        os.environ["REPRO_SANITIZE"] = args.sanitize
    if args.trace_out and args.obs == "off":
        args.obs = "full"
    if args.progress and args.obs == "off":
        args.obs = "light"
    if args.obs != "off":
        # Same mechanism as --sanitize: the environment override
        # reaches every internally-built PivotConfig.
        os.environ["REPRO_OBS"] = args.obs
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    collected = {}
    session = None
    from contextlib import ExitStack

    with ExitStack() as stack:
        if args.obs != "off":
            from repro.obs.session import observe

            progress = None
            if args.progress:
                from repro.obs.progress import ProgressTracker

                progress = ProgressTracker(
                    stream=sys.stderr, label="repro-bench"
                )
            session = stack.enter_context(observe(
                trace_path=args.trace_out,
                folded_path=(
                    f"{args.trace_out}.folded" if args.trace_out else None
                ),
                metrics_path=(
                    f"{args.trace_out}.metrics.json"
                    if args.trace_out
                    else None
                ),
                progress=progress,
            ))
        for name in names:
            title, runner = EXPERIMENTS[name]
            rows = runner(args)
            collected[name] = {"title": title, "rows": rows}
            print_table(rows, title=f"== {title} ==")
            print()
    if session is not None and args.trace_out:
        print(
            f"wrote trace to {args.trace_out} "
            f"({len(session.observers)} observed runs; summarize with "
            f"'python -m repro.obs report {args.trace_out}')"
        )
    if args.json:
        from repro.bench.report import to_json

        with open(args.json, "w", encoding="utf-8") as f:
            f.write(to_json(collected))
        print(f"wrote JSON results to {args.json}")
    if args.markdown:
        from repro.bench.report import render_report

        with open(args.markdown, "w", encoding="utf-8") as f:
            f.write(
                render_report(
                    collected,
                    title="Reproduction report",
                    preamble=f"Generated by `repro-bench` (seed {args.seed}).",
                )
            )
        print(f"wrote markdown report to {args.markdown}")
    return 0


def _simple(runner: Callable[..., list]) -> Callable:
    def run(args) -> list:
        return runner(seed=args.seed)

    return run


def _grid(runner: Callable[..., list], quick_datasets=("cahepph", "soflow")) -> Callable:
    def run(args) -> list:
        kwargs: Dict[str, object] = {"seed": args.seed}
        if args.quick:
            kwargs.update(datasets=quick_datasets, ks=_QUICK_KS, etas=_QUICK_ETAS)
        if args.datasets:
            kwargs["datasets"] = tuple(args.datasets)
        if args.ks:
            kwargs["ks"] = tuple(args.ks)
        if args.etas:
            kwargs["etas"] = tuple(args.etas)
        return runner(**kwargs)

    return run


def _fig8(args) -> list:
    kwargs: Dict[str, object] = {"seed": args.seed}
    if args.quick:
        kwargs.update(ks=_QUICK_KS)
    if args.datasets:
        kwargs["datasets"] = tuple(args.datasets)
    if args.ks:
        kwargs["ks"] = tuple(args.ks)
    return experiment_fig8(**kwargs)


def _fig9(args) -> list:
    kwargs: Dict[str, object] = {"seed": args.seed}
    if args.quick:
        kwargs["fractions"] = (0.4, 1.0)
    return experiment_fig9(**kwargs)


def _fig10(args) -> list:
    kwargs: Dict[str, object] = {"seed": args.seed}
    if args.quick:
        kwargs["datasets"] = _QUICK_DATASETS
    if args.datasets:
        kwargs["datasets"] = tuple(args.datasets)
    return experiment_fig10(**kwargs)


def _ablation(args) -> list:
    kwargs: Dict[str, object] = {"seed": args.seed}
    if args.datasets:
        kwargs["datasets"] = tuple(args.datasets)
    return experiment_ablation(**kwargs)


EXPERIMENTS: Dict[str, tuple] = {
    "table1": ("Table 1: dataset statistics", _simple(experiment_table1)),
    "fig3": ("Fig. 3: runtime of MUC / PMUC / PMUC+", _grid(experiment_fig3, _QUICK_DATASETS)),
    "fig4": ("Fig. 4: vertex orderings", _grid(experiment_fig4)),
    "fig5": ("Fig. 5: pivot selection strategies", _grid(experiment_fig5)),
    "fig6-7": ("Figs. 6-7: graph reduction techniques", _grid(experiment_fig6_fig7)),
    "fig8": ("Fig. 8: probability distributions", _fig8),
    "fig9": ("Fig. 9: scalability", _fig9),
    "fig10": ("Fig. 10: memory overhead", _fig10),
    "table2": ("Table 2: PPI clustering precision", _simple(experiment_table2)),
    "fig11": ("Fig. 11: community search", _simple(experiment_fig11)),
    "table3": ("Table 3: task-driven team formation", _simple(experiment_table3)),
    "ablation": ("Ablation: pruning layers of PMUC+", _ablation),
}


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
