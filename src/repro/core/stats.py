"""Search-tree instrumentation shared by all enumerators.

The paper's central claim is about *search effort*: the set-enumeration
baseline explores every subset of each maximal clique, while the pivot
algorithms skip most of them.  :class:`SearchStats` counts exactly the
quantities that claim is about, so tests and benchmarks can assert the
reduction directly instead of relying on wall-clock noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SearchStats:
    """Counters describing one enumeration run.

    Attributes
    ----------
    calls:
        Number of recursive-procedure invocations (nodes of the search
        tree, including the root calls of the outer loop).
    expansions:
        Number of candidate vertices actually expanded into a child
        branch.
    outputs:
        Number of maximal ``(k, η)``-cliques emitted.
    mpivot_skips:
        Candidates skipped because they belonged to the current
        M-pivot periphery (the recorded maximum η-clique).
    kpivot_stops:
        Recursive calls cut short by the size-constraint (K-pivot)
        stopping rule.
    size_prunes:
        Child branches skipped because ``|R'| + bound(C')`` could not
        reach ``k``.
    max_depth:
        Deepest recursion level reached (root call = depth 1).
    """

    calls: int = 0
    expansions: int = 0
    outputs: int = 0
    mpivot_skips: int = 0
    kpivot_stops: int = 0
    size_prunes: int = 0
    max_depth: int = 0

    def observe_depth(self, depth: int) -> None:
        """Record a visit at ``depth`` of the search tree."""
        if depth > self.max_depth:
            self.max_depth = depth

    def as_dict(self) -> dict:
        """Plain-dict view (used by the bench harness)."""
        return {
            "calls": self.calls,
            "expansions": self.expansions,
            "outputs": self.outputs,
            "mpivot_skips": self.mpivot_skips,
            "kpivot_stops": self.kpivot_stops,
            "size_prunes": self.size_prunes,
            "max_depth": self.max_depth,
        }


@dataclass
class EnumerationResult:
    """Outcome of an enumeration run: the cliques plus search counters.

    Monolithic runs leave ``shards``/``fleet`` empty.  The partitioned
    and parallel drivers (:mod:`repro.core.partition`) fill them: one
    breakdown dict per seed chunk (its own counters, wall seconds,
    pid, peak RSS, optional metrics snapshot and flight-log path) plus
    the cross-worker imbalance/utilization summary of
    :func:`repro.obs.fleet.fleet_summary` — so the merged ``stats``
    stop being the only surviving view of a fan-out.
    """

    cliques: list = field(default_factory=list)
    stats: SearchStats = field(default_factory=SearchStats)
    shards: list = field(default_factory=list)
    fleet: dict = field(default_factory=dict)

    def __iter__(self):
        return iter(self.cliques)

    def __len__(self) -> int:
        return len(self.cliques)

    def as_sorted_sets(self) -> list:
        """Canonical, order-independent view for comparisons in tests."""
        return sorted(
            (frozenset(c) for c in self.cliques),
            key=lambda s: (len(s), sorted(map(repr, s))),
        )
