"""Incremental maintenance of maximal ``(k, η)``-cliques under updates.

Enumerating from scratch after every edge change is wasteful: an edge
update at ``(u, v)`` can only affect cliques that touch ``u`` or ``v``.
Formally, for any vertex set ``S`` with ``u ∉ S`` and ``v ∉ S``,

* ``Pr(S)`` is unchanged (the updated edge is not inside ``S``), and
* the status of every extension ``S ∪ {w}`` is unchanged as well —
  ``S ∪ {w}`` contains the edge ``(u, v)`` only if both endpoints are
  inside, which would put ``u`` or ``v`` in ``S``.

So :class:`DynamicCliqueIndex` repairs the clique set locally: it drops
every indexed clique containing ``u`` or ``v`` and re-enumerates the
maximal cliques *through* each endpoint inside the endpoint's closed
neighborhood (a clique containing ``x`` lives inside ``N[x]``, and its
possible extensions are common neighbors of its members — all inside
``N[x]`` — so maximality inside the neighborhood subgraph coincides
with maximality in the full graph).

Vertex removal is supported by cascading edge removals, vertex
insertion by edge insertions; both therefore inherit the edge-level
correctness argument.  The index is validated against from-scratch
re-enumeration in the test suite.
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.exceptions import GraphError, ParameterError
from repro.core.api import enumerate_maximal_cliques
from repro.uncertain.graph import UncertainGraph, Vertex


class DynamicCliqueIndex:
    """Maintains all maximal ``(k, η)``-cliques under edge updates.

    Parameters
    ----------
    graph:
        Initial uncertain graph (copied; later mutations go through the
        index methods).
    k, eta:
        The clique parameters, fixed for the index lifetime.
    algorithm:
        Enumeration algorithm used for the initial build and the local
        repairs (default ``"pmuc+"``).

    Examples
    --------
    >>> g = UncertainGraph([(0, 1, 0.9), (1, 2, 0.9)])
    >>> index = DynamicCliqueIndex(g, k=3, eta=0.5)
    >>> len(index)
    0
    >>> index.add_edge(0, 2, 0.9)
    >>> sorted(next(iter(index.cliques)))
    [0, 1, 2]
    """

    def __init__(
        self,
        graph: UncertainGraph,
        k: int,
        eta,
        algorithm: str = "pmuc+",
    ):
        if not isinstance(k, int) or k < 1:
            raise ParameterError(f"k must be a positive integer, got {k!r}")
        if not 0 < eta <= 1:
            raise ParameterError(f"eta must lie in (0, 1], got {eta!r}")
        self._graph = graph.copy()
        self._k = k
        self._eta = eta
        self._algorithm = algorithm
        self._cliques: Set[frozenset] = set(
            enumerate_maximal_cliques(self._graph, k, eta, algorithm).cliques
        )
        #: Number of local repair enumerations performed (for tests
        #: and benchmarks comparing against full recomputation).
        self.repairs = 0

    # ------------------------------------------------------------------
    @property
    def graph(self) -> UncertainGraph:
        """The current graph (treat as read-only)."""
        return self._graph

    @property
    def cliques(self) -> Set[frozenset]:
        """The current maximal ``(k, η)``-cliques (do not mutate)."""
        return self._cliques

    def __len__(self) -> int:
        return len(self._cliques)

    def __contains__(self, vertices) -> bool:
        return frozenset(vertices) in self._cliques

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def add_edge(self, u: Vertex, v: Vertex, p) -> None:
        """Insert edge ``(u, v)`` (or update its probability) and repair."""
        self._graph.add_edge(u, v, p)
        self._repair(u, v)

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Delete edge ``(u, v)`` and repair."""
        self._graph.remove_edge(u, v)
        self._repair(u, v)

    def add_vertex(self, v: Vertex) -> None:
        """Insert an isolated vertex (a maximal clique iff ``k == 1``)."""
        if v in self._graph:
            return
        self._graph.add_vertex(v)
        if self._k == 1:
            self._cliques.add(frozenset([v]))

    def remove_vertex(self, v: Vertex) -> None:
        """Delete ``v`` (cascading its incident edges) and repair."""
        if v not in self._graph:
            raise GraphError(f"vertex {v!r} does not exist")
        for u in list(self._graph.neighbors(v)):
            self.remove_edge(u, v)
        self._graph.remove_vertex(v)
        self._cliques.discard(frozenset([v]))

    # ------------------------------------------------------------------
    def _repair(self, u: Vertex, v: Vertex) -> None:
        """Recompute the cliques touching ``u`` or ``v`` locally."""
        self.repairs += 1
        self._cliques = {
            s for s in self._cliques if u not in s and v not in s
        }
        fresh: Set[frozenset] = set()
        for x in (u, v):
            fresh.update(self._cliques_through(x))
        # A clique through u may also contain v (and vice versa); the
        # two neighborhood enumerations can both emit it — the set
        # union deduplicates.  A clique through u that is maximal in
        # N[u] but extendable by a vertex outside N[u] cannot exist
        # (any extender is adjacent to u), so everything fresh is
        # globally maximal.
        self._cliques.update(fresh)

    def _cliques_through(self, x: Vertex) -> Iterable[frozenset]:
        neighborhood = set(self._graph.neighbors(x))
        neighborhood.add(x)
        local = self._graph.subgraph(neighborhood)
        for clique in enumerate_maximal_cliques(
            local, self._k, self._eta, self._algorithm
        ).cliques:
            if x in clique:
                yield clique

    # ------------------------------------------------------------------
    def recompute(self) -> Set[frozenset]:
        """From-scratch enumeration (used to validate the index)."""
        return set(
            enumerate_maximal_cliques(
                self._graph, self._k, self._eta, self._algorithm
            ).cliques
        )

    def check(self) -> bool:
        """Return True if the index matches a from-scratch enumeration."""
        return self._cliques == self.recompute()
