"""Pivot-selection strategies (Section 4.6).

The M-pivot technique prunes candidates covered by the maximum η-clique
found through the pivot vertex, so a good pivot is one that sits inside
a *large* maximum η-clique.  The paper proposes three heuristics:

* **maximum degree** — pick the candidate of largest degree;
* **maximum color number** — pick the candidate whose neighbors span
  the most color classes (a tighter clique-size upper bound);
* **hybrid** — combine a global per-vertex lower bound ``LB(v)`` on the
  largest η-clique seen containing ``v`` with the two bounds above.

All strategies receive a :class:`PivotContext` with the precomputed
degree/color data and the mutable ``LB`` table the enumerator updates
as it discovers cliques.

The kernel backend mirrors these strategies over integer ids with
fused per-vertex key arrays (see ``repro.kernel.enumerate``); any
change to a strategy's tie-breaking here must be replicated there —
the parity tests compare the resulting search trees stat-for-stat.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List

from repro.exceptions import ParameterError
from repro.deterministic.coloring import greedy_coloring
from repro.deterministic.graph import Graph
from repro.uncertain.graph import Vertex


@dataclass
class PivotContext:
    """Shared read-mostly data consulted by pivot strategies.

    ``degree`` and ``color_number`` are computed once on the (reduced)
    deterministic backbone; ``lower_bound`` is updated by the
    enumerator whenever a larger η-clique through a vertex is found.
    """

    degree: Dict[Vertex, int]
    color: Dict[Vertex, int]
    color_number: Dict[Vertex, int]
    lower_bound: Dict[Vertex, int] = field(default_factory=dict)
    k: int = 1

    @classmethod
    def from_backbone(cls, backbone: Graph, k: int) -> "PivotContext":
        """Build the context from a deterministic backbone graph."""
        colors = greedy_coloring(backbone)
        color_number = {
            v: len({colors[u] for u in backbone.neighbors(v)})
            for v in backbone
        }
        return cls(
            degree={v: backbone.degree(v) for v in backbone},
            color=colors,
            color_number=color_number,
            lower_bound={v: 1 for v in backbone},
            k=k,
        )

    def raise_lower_bound(self, vertices: Iterable[Vertex], size: int) -> None:
        """Record that an η-clique of ``size`` contains ``vertices``."""
        lb = self.lower_bound
        for v in vertices:
            if lb.get(v, 0) < size:
                lb[v] = size


def improper_coloring_pairs(color, edges) -> List:
    """Monochromatic edges under ``color`` — empty iff proper.

    The color-based K-pivot bound (Lemma 6) and the max-color pivot
    heuristic both treat the number of color classes as a clique-size
    upper bound, which only holds for a *proper* coloring; the runtime
    sanitizer calls this over the backbone edges to certify it.
    """
    return [
        (u, v) for u, v in edges if color.get(u) == color.get(v)
    ]


Strategy = Callable[[List[Vertex], PivotContext], Vertex]


def select_first(candidates: List[Vertex], ctx: PivotContext) -> Vertex:
    """Degenerate strategy: the first candidate (ordering baseline)."""
    return candidates[0]


def select_max_degree(candidates: List[Vertex], ctx: PivotContext) -> Vertex:
    """Maximum-degree pivot selection (``PMUC-D`` in Exp-3)."""
    degree = ctx.degree
    return max(candidates, key=lambda v: degree.get(v, 0))


def select_max_color(candidates: List[Vertex], ctx: PivotContext) -> Vertex:
    """Maximum-color-number pivot selection (``PMUC-CD`` in Exp-3)."""
    color_number = ctx.color_number
    return max(candidates, key=lambda v: color_number.get(v, 0))


def select_hybrid(candidates: List[Vertex], ctx: PivotContext) -> Vertex:
    """Hybrid lower-bound strategy (the paper's ``PMUC+`` default).

    Among the candidates with the maximum color number, take ``v`` with
    the largest ``LB``; among the candidates with the maximum degree,
    take ``u`` with the largest color number.  Choose ``v`` when its
    lower bound exceeds ``k`` (evidence of a genuinely large clique),
    otherwise ``u``.
    """
    color_number = ctx.color_number
    degree = ctx.degree
    lb = ctx.lower_bound
    best_color = max(color_number.get(c, 0) for c in candidates)
    v = max(
        (c for c in candidates if color_number.get(c, 0) == best_color),
        key=lambda c: lb.get(c, 1),
    )
    best_degree = max(degree.get(c, 0) for c in candidates)
    u = max(
        (c for c in candidates if degree.get(c, 0) == best_degree),
        key=lambda c: color_number.get(c, 0),
    )
    return v if lb.get(v, 1) > ctx.k else u


STRATEGIES: Dict[str, Strategy] = {
    "first": select_first,
    "degree": select_max_degree,
    "color": select_max_color,
    "hybrid": select_hybrid,
}


def get_strategy(name: str) -> Strategy:
    """Look up a pivot strategy by configuration name."""
    try:
        return STRATEGIES[name]
    except KeyError:
        raise ParameterError(
            f"unknown pivot strategy {name!r}; expected one of "
            f"{tuple(STRATEGIES)}"
        ) from None
