"""Maximum η-clique search and top-r maximal clique queries.

The enumeration algorithms report *every* maximal ``(k, η)``-clique;
two common queries need much less:

* :func:`maximum_k_eta_clique` — one largest ``(k, η)``-clique (ties
  broken by clique probability).  Implemented as a dedicated
  branch-and-bound that reuses the paper's machinery (core reduction,
  ``GenerateSet`` candidate maintenance, greedy-coloring bounds) but
  prunes every branch that cannot beat the incumbent, so it is far
  cheaper than full enumeration.  This is the maximum probabilistic
  clique problem of Miao et al. (J. Comb. Optim. 2014) restated for
  the ``(k, η)`` model.
* :func:`top_r_maximal_cliques` — the ``r`` best maximal cliques by
  ``(size, probability)``, via a bounded heap over the streaming
  enumerator.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.exceptions import ParameterError
from repro.core.api import enumerate_maximal_cliques
from repro.core.candidates import generate_set
from repro.core.stats import SearchStats
from repro.deterministic.coloring import greedy_coloring
from repro.reduction.ordering import topk_core_ordering
from repro.reduction.topk_core import topk_core
from repro.uncertain.clique_probability import clique_probability
from repro.uncertain.graph import UncertainGraph, Vertex


def maximum_k_eta_clique(
    graph: UncertainGraph, k: int, eta, stats: Optional[SearchStats] = None
) -> Optional[frozenset]:
    """Return one maximum ``(k, η)``-clique, or None if none exists.

    The returned clique is guaranteed to have maximum *size*; among
    the maximum-size cliques the search prefers higher clique
    probability but may not explore all of them (the color bound prunes
    branches that cannot exceed the incumbent size — exact probability
    tie-breaking would forfeit that pruning).  ``stats`` (optional)
    collects search counters for benchmarking against full enumeration.

    Unlike the enumerator, the search needs no ``X`` set: every
    η-clique extends to a maximal one, so maximizing over *all*
    η-cliques reachable by expansion is enough.
    """
    if not isinstance(k, int) or k < 1:
        raise ParameterError(f"k must be a positive integer, got {k!r}")
    if not 0 < eta <= 1:
        raise ParameterError(f"eta must lie in (0, 1], got {eta!r}")
    if stats is None:
        stats = SearchStats()
    search_graph = topk_core(graph, k - 1, eta) if k >= 2 else graph
    if k == 1 and graph.num_vertices:
        # Any single vertex is a (1, η)-clique; still search for bigger.
        search_graph = graph
    if not search_graph.num_vertices:
        return _fallback_singleton(graph, k)
    order = topk_core_ordering(search_graph, eta)
    rank = {v: i for i, v in enumerate(order)}
    colors = greedy_coloring(search_graph.to_deterministic())
    searcher = _MaximumSearch(search_graph, k, eta, colors, stats)
    # Seeds in reverse peeling order: densest region first, which finds
    # a strong incumbent early and sharpens the bound.
    for v in reversed(order):
        candidates = {
            u: p
            for u, p in search_graph.neighbors(v).items()
            if p >= eta and rank[u] > rank[v]
        }
        searcher.expand([v], 1, candidates)
    best = searcher.best
    if best is None:
        return _fallback_singleton(graph, k)
    return frozenset(best[2])


def top_r_maximal_cliques(
    graph: UncertainGraph, k: int, eta, r: int, algorithm: str = "pmuc+"
) -> List[Tuple[frozenset, object]]:
    """The ``r`` best maximal ``(k, η)``-cliques by ``(size, Pr)``.

    Returns ``(clique, probability)`` pairs, best first.  Memory is
    bounded by ``r`` regardless of how many maximal cliques exist.
    """
    if r < 1:
        raise ParameterError(f"r must be positive, got {r}")
    heap: List[Tuple[Tuple[int, object], int, frozenset]] = []
    counter = [0]

    def consider(clique: frozenset) -> None:
        prob = clique_probability(graph, clique)
        key = (len(clique), prob)
        counter[0] += 1
        if len(heap) < r:
            heapq.heappush(heap, (key, counter[0], clique))
        elif key > heap[0][0]:
            heapq.heapreplace(heap, (key, counter[0], clique))

    enumerate_maximal_cliques(graph, k, eta, algorithm, on_clique=consider)
    ranked = sorted(heap, key=lambda item: item[0], reverse=True)
    return [(clique, key[1]) for key, _tie, clique in ranked]


class _MaximumSearch:
    """Branch-and-bound core of :func:`maximum_k_eta_clique`."""

    def __init__(self, graph, k, eta, colors, stats):
        self._graph = graph
        self._k = k
        self._eta = eta
        self._colors = colors
        self._stats = stats
        #: (size, probability, members) of the incumbent, or None.
        self.best: Optional[Tuple[int, object, List[Vertex]]] = None

    def _bound(self, candidates) -> int:
        colors = self._colors
        return len({colors[v] for v in candidates})

    def expand(self, r: List[Vertex], q, candidates) -> None:
        stats = self._stats
        stats.calls += 1
        size = len(r)
        incumbent = self.best
        if size >= self._k and (
            incumbent is None or (size, q) > (incumbent[0], incumbent[1])
        ):
            self.best = (size, q, list(r))
            incumbent = self.best
        if not candidates:
            return
        floor = incumbent[0] if incumbent is not None else self._k - 1
        if size + self._bound(candidates) <= floor:
            stats.size_prunes += 1
            return
        # Expand strongest-first: high r-values keep q large longest.
        for u in sorted(candidates, key=lambda w: candidates[w], reverse=True):
            r_u = candidates.pop(u)
            q_new = q * r_u
            r.append(u)
            stats.expansions += 1
            child = generate_set(self._graph, u, candidates, q_new, self._eta)
            self.expand(r, q_new, child)
            r.pop()
            incumbent = self.best
            floor = incumbent[0] if incumbent is not None else self._k - 1
            if size + 1 + self._bound(candidates) <= floor:
                stats.size_prunes += 1
                break


def _fallback_singleton(graph: UncertainGraph, k: int) -> Optional[frozenset]:
    """k = 1 on a graph whose core is empty: any vertex qualifies."""
    if k == 1 and graph.num_vertices:
        return frozenset([graph.vertices()[0]])
    return None
