"""Partitioned and parallel maximal-clique enumeration.

Algorithm 3's outer loop decomposes the problem by seed vertex: the
recursion rooted at ``v`` emits exactly the maximal cliques whose
minimum-ordered member is ``v``.  The work units are therefore
embarrassingly parallel, and this module exploits that:

* :func:`seed_partitions` — split the ordering into balanced chunks
  (round-robin, so each chunk gets a mix of early/dense and late/sparse
  seeds);
* :func:`enumerate_partitioned` — run the chunks sequentially but
  independently (useful for incremental/checkpointed jobs, and the
  correctness reference for the parallel path);
* :func:`enumerate_parallel` — fan the chunks out to a
  ``multiprocessing`` pool.

The reduction and the vertex ordering are computed **once** in the
parent and shipped to every worker along with its chunk: workers no
longer repeat that preprocessing, and — just as importantly — every
worker provably uses the *same* ordering.  (Before this, each worker
recomputed both; any ordering divergence between spawn workers would
break the one-emitting-seed-per-clique invariant.)
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.exceptions import ParameterError
from repro.core.config import PMUC_PLUS_CONFIG, PivotConfig
from repro.core.pmuc import PivotEnumerator, reduce_graph
from repro.core.stats import EnumerationResult
from repro.reduction.ordering import vertex_ordering
from repro.uncertain.graph import UncertainGraph, Vertex


def seed_partitions(
    graph: UncertainGraph,
    parts: int,
    eta,
    config: PivotConfig = PMUC_PLUS_CONFIG,
) -> List[List[Vertex]]:
    """Split the enumeration seeds into ``parts`` balanced chunks."""
    if parts < 1:
        raise ParameterError(f"parts must be positive, got {parts}")
    order = vertex_ordering(graph, config.ordering, eta)
    chunks: List[List[Vertex]] = [[] for _ in range(parts)]
    for i, v in enumerate(order):
        chunks[i % parts].append(v)
    return [c for c in chunks if c]


def _prepare_jobs(
    graph: UncertainGraph,
    k: int,
    eta,
    parts: int,
    config: PivotConfig,
) -> Tuple[UncertainGraph, List[Vertex], List[List[Vertex]]]:
    """Reduce and order once; chunk the ordering round-robin.

    Chunking the *reduced* ordering (rather than the full-graph
    ordering of :func:`seed_partitions`) skips seeds the reduction
    already eliminated, so no worker burns a slot on a root with no
    surviving candidates.
    """
    if parts < 1:
        raise ParameterError(f"parts must be positive, got {parts}")
    reduced = reduce_graph(graph, k, eta, config)
    order = vertex_ordering(reduced, config.ordering, eta)
    chunks: List[List[Vertex]] = [[] for _ in range(parts)]
    for i, v in enumerate(order):
        chunks[i % parts].append(v)
    return reduced, list(order), [c for c in chunks if c]


def enumerate_partitioned(
    graph: UncertainGraph,
    k: int,
    eta,
    parts: int = 4,
    config: PivotConfig = PMUC_PLUS_CONFIG,
) -> EnumerationResult:
    """Enumerate by running each seed chunk as an independent job.

    The merged result equals a single full run (each clique has one
    emitting seed).  Reduction and ordering happen once up front and
    are reused by every chunk, so the merged ``calls`` counter matches
    the monolithic run exactly.
    """
    reduced, order, chunks = _prepare_jobs(graph, k, eta, parts, config)
    merged = EnumerationResult()
    for chunk in chunks:
        result = PivotEnumerator(reduced, k, eta, config).run(
            seeds=chunk, reduced_graph=reduced, order=order
        )
        merged.cliques.extend(result.cliques)
        _accumulate(merged, result)
    return merged


def enumerate_parallel(
    graph: UncertainGraph,
    k: int,
    eta,
    parts: int = 4,
    processes: Optional[int] = None,
    config: PivotConfig = PMUC_PLUS_CONFIG,
) -> EnumerationResult:
    """Enumerate with a multiprocessing pool (one task per seed chunk).

    The parent reduces the graph and fixes the vertex ordering; each
    worker receives the reduced graph, the shared ordering and its
    chunk, so per-worker preprocessing is limited to unpickling.
    """
    import multiprocessing

    reduced, order, chunks = _prepare_jobs(graph, k, eta, parts, config)
    if len(chunks) <= 1:
        merged = EnumerationResult()
        for chunk in chunks:
            result = PivotEnumerator(reduced, k, eta, config).run(
                seeds=chunk, reduced_graph=reduced, order=order
            )
            merged.cliques.extend(result.cliques)
            _accumulate(merged, result)
        return merged
    merged = EnumerationResult()
    with multiprocessing.get_context("spawn").Pool(
        processes=processes or min(len(chunks), multiprocessing.cpu_count())
    ) as pool:
        jobs = [(reduced, k, eta, config, chunk, order) for chunk in chunks]
        for result in pool.map(_run_chunk, jobs):
            merged.cliques.extend(result.cliques)
            _accumulate(merged, result)
    return merged


def _run_chunk(job) -> EnumerationResult:
    reduced, k, eta, config, chunk, order = job
    return PivotEnumerator(reduced, k, eta, config).run(
        seeds=chunk, reduced_graph=reduced, order=order
    )


def _accumulate(merged: EnumerationResult, part: EnumerationResult) -> None:
    stats = merged.stats
    other = part.stats
    stats.calls += other.calls
    stats.expansions += other.expansions
    stats.outputs += other.outputs
    stats.mpivot_skips += other.mpivot_skips
    stats.kpivot_stops += other.kpivot_stops
    stats.size_prunes += other.size_prunes
    stats.max_depth = max(stats.max_depth, other.max_depth)
