"""Partitioned and parallel maximal-clique enumeration.

Algorithm 3's outer loop decomposes the problem by seed vertex: the
recursion rooted at ``v`` emits exactly the maximal cliques whose
minimum-ordered member is ``v``.  The work units are therefore
embarrassingly parallel, and this module exploits that:

* :func:`seed_partitions` — split the ordering into balanced chunks
  (round-robin, so each chunk gets a mix of early/dense and late/sparse
  seeds);
* :func:`enumerate_partitioned` — run the chunks sequentially but
  independently (useful for incremental/checkpointed jobs, and the
  correctness reference for the parallel path);
* :func:`enumerate_parallel` — fan the chunks out to a
  ``multiprocessing`` pool.

The reduction and the vertex ordering are computed **once** in the
parent and shipped to every worker along with its chunk: workers no
longer repeat that preprocessing, and — just as importantly — every
worker provably uses the *same* ordering.  (Before this, each worker
recomputed both; any ordering divergence between spawn workers would
break the one-emitting-seed-per-clique invariant.)

Both drivers keep the *per-shard* view alongside the merged counters:
each chunk contributes one breakdown dict (its own
:class:`~repro.core.stats.SearchStats`, wall seconds, pid, peak RSS,
and — when the config enables observation — the worker's full metrics
snapshot) to ``EnumerationResult.shards``, and
``EnumerationResult.fleet`` carries the imbalance/utilization summary.
With ``flight_dir`` set, every process additionally appends a
crash-safe flight log (:mod:`repro.obs.flight`): the parent records
the dispatch fan-out, each worker records its run, and the logs replay
into the same merged registry the parent computed live.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ParameterError
from repro.core.config import PMUC_PLUS_CONFIG, PivotConfig
from repro.core.pmuc import PivotEnumerator, reduce_graph
from repro.core.stats import EnumerationResult
from repro.reduction.ordering import vertex_ordering
from repro.uncertain.graph import UncertainGraph, Vertex


def seed_partitions(
    graph: UncertainGraph,
    parts: int,
    eta,
    config: PivotConfig = PMUC_PLUS_CONFIG,
) -> List[List[Vertex]]:
    """Split the enumeration seeds into ``parts`` balanced chunks."""
    if parts < 1:
        raise ParameterError(f"parts must be positive, got {parts}")
    order = vertex_ordering(graph, config.ordering, eta)
    chunks: List[List[Vertex]] = [[] for _ in range(parts)]
    for i, v in enumerate(order):
        chunks[i % parts].append(v)
    return [c for c in chunks if c]


def _prepare_jobs(
    graph: UncertainGraph,
    k: int,
    eta,
    parts: int,
    config: PivotConfig,
) -> Tuple[UncertainGraph, List[Vertex], List[List[Vertex]]]:
    """Reduce and order once; chunk the ordering round-robin.

    Chunking the *reduced* ordering (rather than the full-graph
    ordering of :func:`seed_partitions`) skips seeds the reduction
    already eliminated, so no worker burns a slot on a root with no
    surviving candidates.
    """
    if parts < 1:
        raise ParameterError(f"parts must be positive, got {parts}")
    reduced = reduce_graph(graph, k, eta, config)
    order = vertex_ordering(reduced, config.ordering, eta)
    chunks: List[List[Vertex]] = [[] for _ in range(parts)]
    for i, v in enumerate(order):
        chunks[i % parts].append(v)
    return reduced, list(order), [c for c in chunks if c]


def enumerate_partitioned(
    graph: UncertainGraph,
    k: int,
    eta,
    parts: int = 4,
    config: PivotConfig = PMUC_PLUS_CONFIG,
) -> EnumerationResult:
    """Enumerate by running each seed chunk as an independent job.

    The merged clique set and ``outputs`` counter equal a single full
    run (each clique has one emitting seed).  The *effort* counters
    (``calls``, ``mpivot_skips``, ...) are deterministic for a given
    chunking but not invariant across chunkings: the M-pivot warm
    state carries across roots within one chunk, so splitting the seed
    order re-partitions that reuse.  ``parts=1`` reproduces the
    monolithic counters exactly; for any fixed ``parts`` this function
    is the sequential counter-reference for :func:`enumerate_parallel`.
    The per-chunk breakdown survives in ``result.shards`` (all chunks
    share this process's pid).
    """
    reduced, order, chunks = _prepare_jobs(graph, k, eta, parts, config)
    outcomes = [
        _run_chunk((reduced, k, eta, config, chunk, order, index, None))
        for index, chunk in enumerate(chunks)
    ]
    return _merge_outcomes(outcomes)


def enumerate_parallel(
    graph: UncertainGraph,
    k: int,
    eta,
    parts: int = 4,
    processes: Optional[int] = None,
    config: PivotConfig = PMUC_PLUS_CONFIG,
    flight_dir: Optional[str] = None,
    store=None,
) -> EnumerationResult:
    """Enumerate with a multiprocessing pool (one task per seed chunk).

    The parent reduces the graph and fixes the vertex ordering; each
    worker receives the reduced graph, the shared ordering and its
    chunk, so per-worker preprocessing is limited to unpickling.

    ``flight_dir`` enables flight recording: the parent writes
    ``flight-parent.jsonl`` (run start, one ``dispatch`` per shard,
    the merged finish) and each worker writes
    ``flight-worker<NN>.jsonl`` into the same directory.  Replaying
    the worker logs (:func:`repro.obs.flight.merge_flight_registries`)
    reproduces ``result.fleet["metrics"]`` byte for byte when the
    config observes at least at ``obs="light"``.

    ``store`` (a :class:`~repro.store.store.RunStore`) enables
    store-backed reuse: the run is keyed under procedure
    ``peel/parts=N`` — parallel effort counters depend on the chunking
    (M-pivot warm state is per chunk), so a 2-way run never answers a
    4-way query — and a repeated key returns the stored cliques,
    counters and shard breakdown without spawning a single worker.
    Flight logs register as artifacts of the stored run.
    """
    import multiprocessing

    key = None
    if store is not None:
        from repro.store.key import run_key_for

        key = run_key_for(
            graph, k, eta, config, procedure="peel/parts=%d" % parts
        )
        stored = store.get_run(key)
        if stored is not None and stored.cliques is not None:
            result = stored.result()
            result.shards = list(stored.record.extra.get("shards") or [])
            result.fleet = dict(stored.record.extra.get("fleet") or {})
            return result

    reduced, order, chunks = _prepare_jobs(graph, k, eta, parts, config)
    recorder = None
    paths: List[Optional[str]] = [None] * len(chunks)
    if flight_dir is not None:
        from repro.obs.flight import FlightRecorder

        os.makedirs(flight_dir, exist_ok=True)
        paths = [
            os.path.join(flight_dir, "flight-worker%02d.jsonl" % index)
            for index in range(len(chunks))
        ]
        recorder = FlightRecorder(
            os.path.join(flight_dir, "flight-parent.jsonl"), role="parent"
        )
    jobs = [
        (reduced, k, eta, config, chunk, order, index, paths[index])
        for index, chunk in enumerate(chunks)
    ]
    start = time.perf_counter()
    try:
        if recorder is not None:
            recorder.run_start(
                k=k,
                eta=eta,
                backend=config.backend,
                obs=config.obs,
                workers=len(chunks),
                vertices=reduced.num_vertices,
            )
            for index, chunk in enumerate(chunks):
                recorder.dispatch(
                    shard=index, seeds=len(chunk), path=paths[index]
                )
        if len(chunks) <= 1:
            # Degenerate fan-out: run in-process, same code path as a
            # worker so the shard breakdown and flight log still exist.
            outcomes = [_run_chunk(job) for job in jobs]
        else:
            with multiprocessing.get_context("spawn").Pool(
                processes=processes
                or min(len(chunks), multiprocessing.cpu_count())
            ) as pool:
                outcomes = pool.map(_run_chunk, jobs)
        merged = _merge_outcomes(outcomes)
        wall = time.perf_counter() - start
        if recorder is not None:
            recorder.finish(
                stats=merged.stats.as_dict(),
                wall_s=round(wall, 6),
                outputs=merged.stats.outputs,
                fleet={
                    name: value
                    for name, value in sorted(merged.fleet.items())
                    if name != "metrics"
                },
            )
    finally:
        if recorder is not None:
            recorder.close()
    if store is not None:
        from repro.store.records import stamped_record

        record = stamped_record(
            "parallel",
            wall,
            len(merged.cliques),
            merged.stats.as_dict(),
            extra={
                "k": k,
                "eta": repr(eta),
                "parts": parts,
                "shards": merged.shards,
                "fleet": {
                    name: value
                    for name, value in sorted(merged.fleet.items())
                    if name != "metrics"
                },
            },
            backend=key.backend,
        )
        digest = store.put_run(key, record, cliques=merged.cliques)
        if flight_dir is not None:
            for path in [
                os.path.join(flight_dir, "flight-parent.jsonl")
            ] + [p for p in paths if p is not None]:
                store.register_artifact(
                    digest, os.path.basename(path), path
                )
    return merged


def _run_chunk(job) -> Tuple[EnumerationResult, Dict[str, object]]:
    """One shard, in whatever process it landed in.

    Returns the chunk's own :class:`EnumerationResult` plus its
    breakdown dict; everything is built locally and *returned* — spawn
    workers share nothing with the parent (REP006/REP014).
    """
    reduced, k, eta, config, chunk, order, shard, flight_path = job
    recorder = None
    if flight_path is not None:
        from repro.obs.flight import FlightRecorder

        recorder = FlightRecorder(flight_path, role="worker", worker=shard)
        recorder.run_start(
            shard=shard,
            seeds=len(chunk),
            k=k,
            eta=eta,
            backend=config.backend,
            obs=config.obs,
        )
    enumerator = PivotEnumerator(reduced, k, eta, config)
    start = time.perf_counter()
    try:
        if recorder is not None:
            from repro.obs.session import observe

            # A worker-local session with no artifact paths: its only
            # job is handing the flight recorder to the observer the
            # run builds, so heartbeats and emission milestones land
            # in this worker's log.
            with observe(flight=recorder):
                result = enumerator.run(
                    seeds=chunk, reduced_graph=reduced, order=order
                )
        else:
            result = enumerator.run(
                seeds=chunk, reduced_graph=reduced, order=order
            )
    except Exception as error:
        if recorder is not None:
            recorder.violation(type(error).__name__, str(error))
            recorder.close()
        raise
    wall = time.perf_counter() - start
    from repro.obs.runtime import peak_rss_bytes

    obs = enumerator.obs
    metrics = obs.metrics.as_dict() if obs is not None else None
    info: Dict[str, object] = {
        "shard": shard,
        "seeds": len(chunk),
        "pid": os.getpid(),
        "wall_s": round(wall, 6),
        "outputs": result.stats.outputs,
        "calls": result.stats.calls,
        "peak_rss_bytes": peak_rss_bytes(),
        "backend": enumerator.backend_used,
        "variant": enumerator.variant_used,
        "metrics": metrics,
        "flight": flight_path,
    }
    if recorder is not None:
        if obs is not None:
            for name, seconds in obs.metrics.timers().items():
                recorder.phase(name, seconds)
        recorder.finish(
            stats=result.stats.as_dict(),
            metrics=metrics,
            wall_s=round(wall, 6),
            outputs=result.stats.outputs,
        )
        recorder.close()
    return result, info


def _merge_outcomes(
    outcomes: Sequence[Tuple[EnumerationResult, Dict[str, object]]]
) -> EnumerationResult:
    """Fold per-chunk outcomes into one result with a fleet view."""
    from repro.obs.fleet import fleet_summary

    merged = EnumerationResult()
    for result, info in outcomes:
        merged.cliques.extend(result.cliques)
        _accumulate(merged, result)
        merged.shards.append(info)
    merged.fleet = fleet_summary(merged.shards)
    return merged


def _accumulate(merged: EnumerationResult, part: EnumerationResult) -> None:
    stats = merged.stats
    other = part.stats
    stats.calls += other.calls
    stats.expansions += other.expansions
    stats.outputs += other.outputs
    stats.mpivot_skips += other.mpivot_skips
    stats.kpivot_stops += other.kpivot_stops
    stats.size_prunes += other.size_prunes
    stats.max_depth = max(stats.max_depth, other.max_depth)
