"""Partitioned and parallel maximal-clique enumeration.

Algorithm 3's outer loop decomposes the problem by seed vertex: the
recursion rooted at ``v`` emits exactly the maximal cliques whose
minimum-ordered member is ``v``.  The work units are therefore
embarrassingly parallel, and this module exploits that:

* :func:`seed_partitions` — split the ordering into balanced chunks
  (round-robin, so each chunk gets a mix of early/dense and late/sparse
  seeds);
* :func:`enumerate_partitioned` — run the chunks sequentially but
  independently (useful for incremental/checkpointed jobs, and the
  correctness reference for the parallel path);
* :func:`enumerate_parallel` — fan the chunks out to a
  ``multiprocessing`` pool.  Each worker re-runs the (cheap) reduction
  and ordering; only the cliques travel back.

Note the ordering/reduction must be identical in every worker, which
they are because all inputs are deterministic functions of the graph.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.exceptions import ParameterError
from repro.core.config import PMUC_PLUS_CONFIG, PivotConfig
from repro.core.pmuc import PivotEnumerator
from repro.core.stats import EnumerationResult
from repro.reduction.ordering import vertex_ordering
from repro.uncertain.graph import UncertainGraph, Vertex


def seed_partitions(
    graph: UncertainGraph,
    parts: int,
    eta,
    config: PivotConfig = PMUC_PLUS_CONFIG,
) -> List[List[Vertex]]:
    """Split the enumeration seeds into ``parts`` balanced chunks."""
    if parts < 1:
        raise ParameterError(f"parts must be positive, got {parts}")
    order = vertex_ordering(graph, config.ordering, eta)
    chunks: List[List[Vertex]] = [[] for _ in range(parts)]
    for i, v in enumerate(order):
        chunks[i % parts].append(v)
    return [c for c in chunks if c]


def enumerate_partitioned(
    graph: UncertainGraph,
    k: int,
    eta,
    parts: int = 4,
    config: PivotConfig = PMUC_PLUS_CONFIG,
) -> EnumerationResult:
    """Enumerate by running each seed chunk as an independent job.

    The merged result equals a single full run (each clique has one
    emitting seed); the merged statistics sum the per-chunk counters,
    so ``calls`` is comparable to — though slightly above — the
    monolithic run (per-chunk reduction/ordering overheads repeat).
    """
    merged = EnumerationResult()
    for chunk in seed_partitions(graph, parts, eta, config):
        result = PivotEnumerator(graph, k, eta, config).run(seeds=chunk)
        merged.cliques.extend(result.cliques)
        _accumulate(merged, result)
    return merged


def enumerate_parallel(
    graph: UncertainGraph,
    k: int,
    eta,
    parts: int = 4,
    processes: Optional[int] = None,
    config: PivotConfig = PMUC_PLUS_CONFIG,
) -> EnumerationResult:
    """Enumerate with a multiprocessing pool (one task per seed chunk)."""
    import multiprocessing

    chunks = seed_partitions(graph, parts, eta, config)
    if len(chunks) <= 1:
        return enumerate_partitioned(graph, k, eta, parts, config)
    merged = EnumerationResult()
    with multiprocessing.get_context("spawn").Pool(
        processes=processes or min(len(chunks), multiprocessing.cpu_count())
    ) as pool:
        jobs = [(graph, k, eta, config, chunk) for chunk in chunks]
        for result in pool.map(_run_chunk, jobs):
            merged.cliques.extend(result.cliques)
            _accumulate(merged, result)
    return merged


def _run_chunk(job) -> EnumerationResult:
    graph, k, eta, config, chunk = job
    return PivotEnumerator(graph, k, eta, config).run(seeds=chunk)


def _accumulate(merged: EnumerationResult, part: EnumerationResult) -> None:
    stats = merged.stats
    other = part.stats
    stats.calls += other.calls
    stats.expansions += other.expansions
    stats.outputs += other.outputs
    stats.mpivot_skips += other.mpivot_skips
    stats.kpivot_stops += other.kpivot_stops
    stats.size_prunes += other.size_prunes
    stats.max_depth = max(stats.max_depth, other.max_depth)
