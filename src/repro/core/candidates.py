"""The ``GenerateSet`` kernel shared by MUC and PMUC (Algorithm 1).

Candidate and excluded sets are dictionaries ``{vertex: r}`` where ``r``
is the product of the probabilities of the edges joining the vertex to
every member of the current clique ``R``.  The invariant maintained
everywhere is::

    v in C or v in X   <=>   R ∪ {v} is an η-clique
                             (equivalently q * r_v >= η, q = Pr(R))

``generate_set`` restricts such a dictionary to the neighbors of a
newly-added vertex ``v`` and refreshes the ``r`` values, keeping only
entries that still satisfy the invariant for ``R' = R ∪ {v}``.

This module is the *reference* implementation, generic over vertex
labels and probability types (including exact ``Fraction``).  The
kernel backend (``PivotConfig.backend = "kernel"``) inlines the same
projection over integer-id bitsets — the neighborhood restriction
becomes one big-int ``&`` and the threshold test a ``-log p`` sum with
a float-boundary guard — in :mod:`repro.kernel.enumerate`; the two
must stay decision-for-decision identical (``tests/test_kernel_parity``).
"""

from __future__ import annotations

from typing import Dict

from repro.uncertain.graph import UncertainGraph, Vertex


def generate_set(
    graph: UncertainGraph,
    v: Vertex,
    entries: Dict[Vertex, object],
    q_new,
    eta,
) -> Dict[Vertex, object]:
    """Project ``entries`` onto ``N(v)`` under the η-clique invariant.

    Parameters
    ----------
    graph:
        The uncertain graph being searched.
    v:
        The vertex just added to the clique (``R' = R ∪ {v}``).
    entries:
        The parent's ``C`` or ``X`` dictionary ``{u: r_u}``.
    q_new:
        ``Pr(R', G)`` — the clique probability after adding ``v``.
    eta:
        The probability threshold.

    Returns
    -------
    dict
        ``{u: r_u * p(u, v)}`` for each neighbor ``u`` of ``v`` in
        ``entries`` with ``q_new * r_u * p(u, v) >= eta``.
    """
    neighbors = graph.neighbors(v)
    out: Dict[Vertex, object] = {}
    for u, r in entries.items():
        p = neighbors.get(u)
        if p is not None:
            r_new = r * p
            if q_new * r_new >= eta:
                out[u] = r_new
    return out


def initial_candidates(
    graph: UncertainGraph, v: Vertex, eta, rank: Dict[Vertex, int]
):
    """Top-level ``C`` and ``X`` for seed vertex ``v`` (Algorithm 3, l. 3-4).

    ``C`` holds neighbors ordered *after* ``v`` (by ``rank``) and ``X``
    those ordered before; both keep only edges with ``p >= eta`` since
    ``{v, u}`` must itself be an η-clique.
    """
    later: Dict[Vertex, object] = {}
    earlier: Dict[Vertex, object] = {}
    rv = rank[v]
    for u, p in graph.neighbors(v).items():
        if p >= eta:
            if rank[u] > rv:
                later[u] = p
            else:
                earlier[u] = p
    return later, earlier
