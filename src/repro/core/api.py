"""Top-level convenience API for maximal ``(k, η)``-clique enumeration.

Most users only need :func:`enumerate_maximal_cliques`; the lower-level
entry points (:func:`repro.core.muc.muc`, the
:class:`repro.core.pmuc.PivotEnumerator`) remain available for
experiments that care about configurations and statistics.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.exceptions import ParameterError
from repro.core.config import PMUC_CONFIG, PMUC_PLUS_CONFIG
from repro.core.muc import muc
from repro.core.pmuc import PivotEnumerator
from repro.core.stats import EnumerationResult
from repro.uncertain.graph import UncertainGraph

#: Algorithm names accepted by :func:`enumerate_maximal_cliques`.
ALGORITHMS = ("muc", "muc-basic", "pmuc", "pmuc+")


def enumerate_maximal_cliques(
    graph: UncertainGraph,
    k: int,
    eta,
    algorithm: str = "pmuc+",
    on_clique: Optional[Callable[[frozenset], None]] = None,
    limit: Optional[int] = None,
) -> EnumerationResult:
    """Enumerate all maximal ``(k, η)``-cliques of ``graph``.

    Parameters
    ----------
    graph:
        The uncertain graph.
    k:
        Minimum clique size.
    eta:
        Probability threshold in ``(0, 1]``.
    algorithm:
        ``"pmuc+"`` (default, fastest), ``"pmuc"``, ``"muc"`` (Li et
        al. state of the art) or ``"muc-basic"`` (Mukherjee et al.,
        no graph reduction).
    on_clique:
        Optional streaming callback; when given, cliques are not
        accumulated in the returned result.
    limit:
        Optional cap on the number of cliques to emit; the search
        stops cleanly once reached.

    Returns
    -------
    EnumerationResult
        Cliques (as frozensets) and :class:`~repro.core.SearchStats`.

    Examples
    --------
    >>> g = UncertainGraph([(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9)])
    >>> result = enumerate_maximal_cliques(g, k=3, eta=0.5)
    >>> sorted(result.cliques[0])
    [0, 1, 2]
    """
    if algorithm == "muc":
        return muc(graph, k, eta, True, on_clique, limit)
    if algorithm == "muc-basic":
        return muc(graph, k, eta, False, on_clique, limit)
    if algorithm == "pmuc":
        return PivotEnumerator(
            graph, k, eta, PMUC_CONFIG, on_clique, limit
        ).run()
    if algorithm == "pmuc+":
        return PivotEnumerator(
            graph, k, eta, PMUC_PLUS_CONFIG, on_clique, limit
        ).run()
    raise ParameterError(
        f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
    )


def maximal_clique_counts(
    graph: UncertainGraph, k: int, eta, algorithm: str = "pmuc+"
) -> Dict[int, int]:
    """Histogram of maximal ``(k, η)``-clique sizes (analysis helper)."""
    histogram: Dict[int, int] = {}

    def count(clique: frozenset) -> None:
        histogram[len(clique)] = histogram.get(len(clique), 0) + 1

    enumerate_maximal_cliques(graph, k, eta, algorithm, on_clique=count)
    return histogram


def maximum_eta_clique(graph: UncertainGraph, eta) -> frozenset:
    """Return one maximum η-clique of ``graph`` (empty if no vertices)."""
    best: List[frozenset] = [frozenset()]

    def keep(clique: frozenset) -> None:
        if len(clique) > len(best[0]):
            best[0] = clique

    enumerate_maximal_cliques(graph, 1, eta, "pmuc+", on_clique=keep)
    return best[0]
