"""Multi-query sessions: amortize reductions across many ``k`` values.

A parameter study (like the paper's Fig. 3 k-sweep) runs many queries
with the same ``η`` and different ``k``.  The reduction decompositions
make that cheap: the ``(Top_k, η)``-core decomposition assigns every
vertex the largest ``k`` whose core contains it, and the
``(Top_k, η)``-triangle decomposition does the same per edge — so after
one decomposition pass, *any* ``k``'s reduced graph is a dictionary
slice instead of a fresh peeling.

:class:`CliqueQuerySession` precomputes both decompositions once and
answers ``query(k)`` by slicing and enumerating with the reduction
switched off (it already happened).

With a :class:`~repro.store.store.RunStore` attached, the session
becomes the service layer's reuse surface:

* the decompositions are loaded from (or published to) the store's
  shared reduction cache, keyed by the exact ``(dataset fingerprint,
  η, engine salt)`` — so *any* number of sessions and serve-loop
  batches at the same η pay for one decomposition total;
* ``query(k)`` first consults the store under the run's canonical
  :class:`~repro.store.key.RunKey` (procedure ``"slice"``): a hit
  returns the stored cliques with the stored counters and performs
  **zero engine recursion** (no enumerator, no observer, no search);
  a miss enumerates, persists, and returns the live result.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from dataclasses import replace

from repro.exceptions import ParameterError
from repro.core.config import PMUC_PLUS_CONFIG, PivotConfig
from repro.core.pmuc import PivotEnumerator
from repro.core.stats import EnumerationResult
from repro.reduction.topk_core import topk_core_decomposition
from repro.reduction.topk_triangle import top_triangle_decomposition
from repro.uncertain.graph import UncertainGraph


class CliqueQuerySession:
    """Answer maximal ``(k, η)``-clique queries for many ``k`` at fixed η.

    Parameters
    ----------
    graph:
        The uncertain graph (not copied; do not mutate during the
        session).
    eta:
        The probability threshold shared by all queries.
    config:
        Enumeration configuration; its ``reduction`` field is ignored
        (the session's sliced subgraph already is the reduced graph).
    store:
        Optional :class:`~repro.store.store.RunStore`: reuse stored
        query results and share the decompositions through the store's
        reduction cache (see the module docstring).
    dataset_fingerprint:
        Optional precomputed :func:`repro.store.key.graph_fingerprint`
        of ``graph`` (skips rehashing when the caller already paid for
        it); ignored without ``store``.

    Examples
    --------
    >>> from repro.datasets import figure1_graph
    >>> session = CliqueQuerySession(figure1_graph(), eta=0.53)
    >>> len(session.query(4).cliques)
    2
    >>> len(session.query(5).cliques)
    1
    """

    def __init__(
        self,
        graph: UncertainGraph,
        eta,
        config: PivotConfig = PMUC_PLUS_CONFIG,
        store=None,
        dataset_fingerprint: Optional[str] = None,
    ):
        if not 0 < eta <= 1:
            raise ParameterError(f"eta must lie in (0, 1], got {eta!r}")
        self._graph = graph
        self._eta = eta
        self._config = replace(config, reduction="off")
        self._store = store
        self._fingerprint = dataset_fingerprint
        #: Store interaction counts for this session (queries answered
        #: from the store / enumerated live; reduction cache reuse).
        self.query_hits = 0
        self.query_misses = 0
        self.reduction_reused = False
        if store is None:
            self._core_shell = topk_core_decomposition(graph, eta)
            self._triangle_shell = top_triangle_decomposition(graph, eta)
        else:
            self._load_or_compute_decompositions()

    def _load_or_compute_decompositions(self) -> None:
        from repro.store.key import graph_fingerprint, reduction_key_for

        if self._fingerprint is None:
            self._fingerprint = graph_fingerprint(self._graph)
        rkey = reduction_key_for(
            self._graph, self._eta,
            dataset_fingerprint=self._fingerprint,
        )
        cached = self._store.get_reduction(rkey)
        if cached is not None:
            self._core_shell, self._triangle_shell = cached
            self.reduction_reused = True
            return
        self._core_shell = topk_core_decomposition(self._graph, self._eta)
        self._triangle_shell = top_triangle_decomposition(
            self._graph, self._eta
        )
        self._store.put_reduction(
            rkey, self._core_shell, self._triangle_shell
        )

    # ------------------------------------------------------------------
    def reduced_graph(self, k: int) -> UncertainGraph:
        """The ``(Top_{k-2}, η)``-triangle (inside the core) for query ``k``.

        Falls back to the core slice for ``k == 2`` and to the full
        graph for ``k == 1`` (where reductions are unsound).
        """
        if not isinstance(k, int) or k < 1:
            raise ParameterError(f"k must be a positive integer, got {k!r}")
        if k == 1:
            return self._graph
        core_vertices = {
            v for v, shell in self._core_shell.items() if shell >= k - 1
        }
        core = self._graph.subgraph(core_vertices)
        if k == 2:
            return core
        surviving = {
            e for e, shell in self._triangle_shell.items() if shell >= k - 2
        }
        return core.edge_subgraph(surviving)

    def query_key(self, k: int):
        """The canonical :class:`~repro.store.key.RunKey` of ``query(k)``.

        Procedure ``"slice"``: the decomposition slice is a sound
        superset of the direct peeling, so clique sets agree with
        ``"peel"`` runs but effort counters are procedure-specific —
        the key keeps the two replay surfaces separate.
        """
        from repro.store.key import graph_fingerprint, run_key_for

        if self._fingerprint is None:
            self._fingerprint = graph_fingerprint(self._graph)
        return run_key_for(
            self._graph, k, self._eta, self._config,
            procedure="slice",
            dataset_fingerprint=self._fingerprint,
            reduction="triangle",
        )

    def query(
        self,
        k: int,
        on_clique: Optional[Callable[[frozenset], None]] = None,
    ) -> EnumerationResult:
        """Enumerate all maximal ``(k, η)``-cliques using the cache.

        With a store attached (and no streaming sink), a repeated key
        is answered from storage: stored cliques, stored counters, no
        recursion.  A streaming ``on_clique`` always enumerates live —
        the caller asked for emission callbacks, not a result set.
        """
        if self._store is None or on_clique is not None:
            reduced = self.reduced_graph(k)
            return PivotEnumerator(
                reduced, k, self._eta, self._config, on_clique
            ).run()
        key = self.query_key(k)
        stored = self._store.get_run(key)
        if stored is not None and stored.cliques is not None:
            self.query_hits += 1
            return stored.result()
        self.query_misses += 1
        from repro.store.records import stamped_record

        reduced = self.reduced_graph(k)
        enumerator = PivotEnumerator(reduced, k, self._eta, self._config)
        start = time.perf_counter()
        result = enumerator.run()
        seconds = time.perf_counter() - start
        record = stamped_record(
            "session",
            seconds,
            len(result.cliques),
            result.stats.as_dict(),
            extra={"k": k, "eta": repr(self._eta)},
            backend=enumerator.backend_used,
            variant=enumerator.variant_used,
        )
        self._store.put_run(key, record, cliques=result.cliques)
        return result

    def size_profile(self, k_values) -> Dict[int, int]:
        """Number of maximal cliques per ``k`` (a Fig.-3-style sweep)."""
        return {k: len(self.query(k).cliques) for k in k_values}
