"""Multi-query sessions: amortize reductions across many ``k`` values.

A parameter study (like the paper's Fig. 3 k-sweep) runs many queries
with the same ``η`` and different ``k``.  The reduction decompositions
make that cheap: the ``(Top_k, η)``-core decomposition assigns every
vertex the largest ``k`` whose core contains it, and the
``(Top_k, η)``-triangle decomposition does the same per edge — so after
one decomposition pass, *any* ``k``'s reduced graph is a dictionary
slice instead of a fresh peeling.

:class:`CliqueQuerySession` precomputes both decompositions once and
answers ``query(k)`` by slicing and enumerating with the reduction
switched off (it already happened).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from dataclasses import replace

from repro.exceptions import ParameterError
from repro.core.config import PMUC_PLUS_CONFIG, PivotConfig
from repro.core.pmuc import PivotEnumerator
from repro.core.stats import EnumerationResult
from repro.reduction.topk_core import topk_core_decomposition
from repro.reduction.topk_triangle import top_triangle_decomposition
from repro.uncertain.graph import UncertainGraph


class CliqueQuerySession:
    """Answer maximal ``(k, η)``-clique queries for many ``k`` at fixed η.

    Parameters
    ----------
    graph:
        The uncertain graph (not copied; do not mutate during the
        session).
    eta:
        The probability threshold shared by all queries.
    config:
        Enumeration configuration; its ``reduction`` field is ignored
        (the session's sliced subgraph already is the reduced graph).

    Examples
    --------
    >>> from repro.datasets import figure1_graph
    >>> session = CliqueQuerySession(figure1_graph(), eta=0.53)
    >>> len(session.query(4).cliques)
    2
    >>> len(session.query(5).cliques)
    1
    """

    def __init__(
        self,
        graph: UncertainGraph,
        eta,
        config: PivotConfig = PMUC_PLUS_CONFIG,
    ):
        if not 0 < eta <= 1:
            raise ParameterError(f"eta must lie in (0, 1], got {eta!r}")
        self._graph = graph
        self._eta = eta
        self._config = replace(config, reduction="off")
        self._core_shell = topk_core_decomposition(graph, eta)
        self._triangle_shell = top_triangle_decomposition(graph, eta)

    # ------------------------------------------------------------------
    def reduced_graph(self, k: int) -> UncertainGraph:
        """The ``(Top_{k-2}, η)``-triangle (inside the core) for query ``k``.

        Falls back to the core slice for ``k == 2`` and to the full
        graph for ``k == 1`` (where reductions are unsound).
        """
        if not isinstance(k, int) or k < 1:
            raise ParameterError(f"k must be a positive integer, got {k!r}")
        if k == 1:
            return self._graph
        core_vertices = {
            v for v, shell in self._core_shell.items() if shell >= k - 1
        }
        core = self._graph.subgraph(core_vertices)
        if k == 2:
            return core
        surviving = {
            e for e, shell in self._triangle_shell.items() if shell >= k - 2
        }
        return core.edge_subgraph(surviving)

    def query(
        self,
        k: int,
        on_clique: Optional[Callable[[frozenset], None]] = None,
    ) -> EnumerationResult:
        """Enumerate all maximal ``(k, η)``-cliques using the cache."""
        reduced = self.reduced_graph(k)
        return PivotEnumerator(
            reduced, k, self._eta, self._config, on_clique
        ).run()

    def size_profile(self, k_values) -> Dict[int, int]:
        """Number of maximal cliques per ``k`` (a Fig.-3-style sweep)."""
        return {k: len(self.query(k).cliques) for k in k_values}
