"""Configuration of the pivot-based enumerator.

Every design axis the paper evaluates is a field here, so the ablation
benchmarks (Figures 4, 5 and the pivot ablation) are one-liner config
changes rather than separate code paths.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.exceptions import ParameterError

#: Accepted values per axis.
ORDERING_CHOICES = ("as-is", "degeneracy", "topk-core")
PIVOT_CHOICES = ("first", "degree", "color", "hybrid")
MPIVOT_CHOICES = ("off", "basic", "improved")
KPIVOT_CHOICES = ("off", "plain", "color")
REDUCTION_CHOICES = ("off", "core", "triangle")
BACKEND_CHOICES = ("dict", "kernel")
SANITIZE_CHOICES = ("off", "light", "full")
OBS_CHOICES = ("off", "light", "metrics", "full")


def _default_backend() -> str:
    """Default ``backend``: the ``REPRO_BACKEND`` env var, else ``dict``.

    Evaluated at construction time (not import time), so the CI backend
    matrix can flip a whole test process onto one backend without
    touching any config literal; explicit ``backend=...`` arguments are
    unaffected.
    """
    return os.environ.get("REPRO_BACKEND") or "dict"


def _require(value: str, choices, name: str) -> None:
    if value not in choices:
        raise ParameterError(
            f"{name} must be one of {choices}, got {value!r}"
        )


@dataclass(frozen=True)
class PivotConfig:
    """Knobs of :class:`repro.core.pmuc.PivotEnumerator`.

    Attributes
    ----------
    ordering:
        Outer-loop vertex ordering (Section 4.5): ``"as-is"``,
        ``"degeneracy"`` or ``"topk-core"``.
    pivot:
        Pivot-selection strategy (Section 4.6): ``"first"`` (no
        heuristic), ``"degree"``, ``"color"`` or ``"hybrid"``.
    mpivot:
        M-pivot pruning (Sections 4.2–4.3): ``"off"``, ``"basic"``
        (periphery fixed by the first pivot branch) or ``"improved"``
        (periphery refined whenever a larger η-clique is found).
    kpivot:
        Size-constraint pruning (Section 5.1): ``"off"``, ``"plain"``
        (candidate count) or ``"color"`` (color-class count).
    reduction:
        Pre-enumeration graph reduction (Section 5.2): ``"off"``,
        ``"core"`` ((Top_{k-1}, η)-core) or ``"triangle"``
        ((Top_{k-2}, η)-triangle applied after the core).
    backend:
        Execution backend: ``"dict"`` (hashable vertices, arbitrary
        numeric probabilities, e.g. :class:`~fractions.Fraction`) or
        ``"kernel"`` (dense int ids + neighbor bitsets, float
        probabilities only; see :mod:`repro.kernel`).  The kernel
        backend produces identical clique sets and statistics, and
        falls back to ``"dict"`` automatically when the graph or
        ``eta`` is not float-valued.  When not set explicitly, the
        default is taken from the ``REPRO_BACKEND`` environment
        variable (``dict`` when unset/empty) — the hook the CI backend
        matrix uses to run the whole suite on each backend.
    sanitize:
        Runtime invariant sanitizer (see :mod:`repro.sanitize`):
        ``"off"`` (default; no hooks fire), ``"light"`` (checks on
        emitted cliques and emitting subtrees) or ``"full"`` (every
        recursion node, plus shadow cross-checks on small inputs).
        When left at ``"off"``, the ``REPRO_SANITIZE`` environment
        variable can still switch a level on process-wide.
    obs:
        Observability layer (see :mod:`repro.obs`): ``"off"``
        (default; no hooks fire), ``"light"`` (flat counters, gauges
        and phase timers only — the cheapest hooked mode, used for
        per-worker telemetry in parallel runs), ``"metrics"`` (adds
        per-depth histograms) or ``"full"`` (metrics plus Chrome-trace
        phase spans, sampled recursion instants, and folded stacks).
        When left at ``"off"``, the ``REPRO_OBS`` environment variable
        can still switch a level on process-wide.
    """

    ordering: str = "topk-core"
    pivot: str = "hybrid"
    mpivot: str = "improved"
    kpivot: str = "off"
    reduction: str = "core"
    backend: str = field(default_factory=_default_backend)
    sanitize: str = "off"
    obs: str = "off"

    def __post_init__(self) -> None:
        _require(self.ordering, ORDERING_CHOICES, "ordering")
        _require(self.pivot, PIVOT_CHOICES, "pivot")
        _require(self.mpivot, MPIVOT_CHOICES, "mpivot")
        _require(self.kpivot, KPIVOT_CHOICES, "kpivot")
        _require(self.reduction, REDUCTION_CHOICES, "reduction")
        _require(self.backend, BACKEND_CHOICES, "backend")
        _require(self.sanitize, SANITIZE_CHOICES, "sanitize")
        _require(self.obs, OBS_CHOICES, "obs")


#: The paper's ``PMUC``: every Section-4 technique, core reduction for a
#: fair comparison with MUC.
PMUC_CONFIG = PivotConfig(
    ordering="topk-core",
    pivot="hybrid",
    mpivot="improved",
    kpivot="off",
    reduction="core",
)

#: The paper's ``PMUC+``: PMUC plus the Section-5 optimizations
#: (color K-pivot and the (Top_k, η)-triangle reduction), running on
#: the bitset kernel backend (parity-tested against the dict backend).
PMUC_PLUS_CONFIG = PivotConfig(
    ordering="topk-core",
    pivot="hybrid",
    mpivot="improved",
    kpivot="color",
    reduction="triangle",
    backend="kernel",
)

