"""The paper's contribution: MUC baseline and pivot-based enumerators."""

from repro.core.api import (
    ALGORITHMS,
    enumerate_maximal_cliques,
    maximal_clique_counts,
    maximum_eta_clique,
)
from repro.core.config import (
    BACKEND_CHOICES,
    KPIVOT_CHOICES,
    MPIVOT_CHOICES,
    ORDERING_CHOICES,
    PIVOT_CHOICES,
    PMUC_CONFIG,
    PMUC_PLUS_CONFIG,
    REDUCTION_CHOICES,
    PivotConfig,
)
from repro.core.dynamic import DynamicCliqueIndex
from repro.core.maximum import maximum_k_eta_clique, top_r_maximal_cliques
from repro.core.muc import muc
from repro.core.partition import (
    enumerate_parallel,
    enumerate_partitioned,
    seed_partitions,
)
from repro.core.session import CliqueQuerySession
from repro.core.verify import VerificationReport, verify_enumeration
from repro.core.pmuc import PivotEnumerator, pmuc, pmuc_plus, reduce_graph
from repro.core.pivot import PivotContext, STRATEGIES, get_strategy
from repro.core.stats import EnumerationResult, SearchStats

__all__ = [
    "ALGORITHMS",
    "enumerate_maximal_cliques",
    "maximal_clique_counts",
    "maximum_eta_clique",
    "PivotConfig",
    "PMUC_CONFIG",
    "PMUC_PLUS_CONFIG",
    "ORDERING_CHOICES",
    "PIVOT_CHOICES",
    "MPIVOT_CHOICES",
    "KPIVOT_CHOICES",
    "REDUCTION_CHOICES",
    "BACKEND_CHOICES",
    "reduce_graph",
    "DynamicCliqueIndex",
    "maximum_k_eta_clique",
    "top_r_maximal_cliques",
    "muc",
    "enumerate_parallel",
    "enumerate_partitioned",
    "seed_partitions",
    "CliqueQuerySession",
    "VerificationReport",
    "verify_enumeration",
    "pmuc",
    "pmuc_plus",
    "PivotEnumerator",
    "PivotContext",
    "STRATEGIES",
    "get_strategy",
    "EnumerationResult",
    "SearchStats",
]
