"""``PMUC`` / ``PMUC+`` — pivot-based enumeration (Algorithm 3).

The search itself — the ``R / C / X`` recursion with the M-pivot
periphery pruning of Section 4 and the K-pivot size stopping of
Section 5 — lives exactly once, in :mod:`repro.engine.driver`.  This
module contributes two things:

* :class:`DictStateOps` — the reference **dict backend** of the
  engine's :class:`~repro.engine.protocol.StateOps` protocol.  ``C``
  and ``X`` are dictionaries ``{vertex: r}`` over arbitrary hashable
  labels and arbitrary numeric probability types (including exact
  :class:`~fractions.Fraction`), projected by the ``GenerateSet``
  kernel of :mod:`repro.core.candidates`.
* :class:`PivotEnumerator` — the public facade: argument validation,
  backend selection (``config.backend == "kernel"`` delegates to the
  bitset backend when :func:`repro.kernel.enumerate.supports` allows,
  silently falling back to the dict backend otherwise), and the
  ``pmuc`` / ``pmuc_plus`` convenience wrappers.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.exceptions import ParameterError
from repro.core.candidates import generate_set, initial_candidates
from repro.core.config import PMUC_CONFIG, PMUC_PLUS_CONFIG, PivotConfig
from repro.core.pivot import PivotContext, get_strategy
from repro.core.stats import EnumerationResult, SearchStats
from repro.engine.protocol import SearchOps, StateOps, register_backend
from repro.reduction.ordering import vertex_ordering
from repro.reduction.topk_core import topk_core
from repro.reduction.topk_triangle import topk_triangle
from repro.uncertain.graph import UncertainGraph, Vertex

Sink = Callable[[frozenset], None]


def reduce_graph(
    graph: UncertainGraph, k: int, eta, config: PivotConfig
) -> UncertainGraph:
    """Apply the configured pre-enumeration graph reduction.

    Reductions drop vertices that cannot appear in any maximal
    ``(k, η)``-clique; they are only sound for ``k >= 2`` (core) and
    ``k >= 3`` (triangle), because smaller cliques need no incident
    structure at all.  Exposed at module level so the partitioned and
    parallel drivers can reduce once and ship the result to workers.
    """
    mode = config.reduction
    if mode == "off" or k < 2:
        return graph
    reduced = topk_core(graph, k - 1, eta)
    if mode == "triangle" and k >= 3:
        reduced = topk_triangle(reduced, k - 2, eta)
    return reduced


class DictStateOps(StateOps):
    """Dict/set state algebra for the search engine (the reference).

    Candidate and exclusion sets are dictionaries ``{vertex: r}``
    where ``r`` is the product of the probabilities of the edges
    joining the vertex to every member of the current clique ``R``
    (the invariant of :mod:`repro.core.candidates`); the accumulated
    clique probability ``q = Pr(R)`` threads through as a plain
    product, exact for whatever numeric type the graph carries.
    """

    name = "dict"
    log_domain = False
    unit = 1

    def __init__(self, graph: UncertainGraph, k: int, eta, config):
        self.graph = graph
        self._k = k
        self._eta = eta
        self._config = config
        self._strategy = get_strategy(config.pivot)
        self.ctx: PivotContext = PivotContext({}, {}, {}, {}, k)
        self.rank: Dict[Vertex, int] = {}
        self.search_graph = graph
        self._order: List[Vertex] = []
        self._backbone = None

    # -- prelude -------------------------------------------------------
    def prepare_reduction(self, reduced_graph) -> None:
        self.search_graph = (
            reduced_graph
            if reduced_graph is not None
            else reduce_graph(self.graph, self._k, self._eta, self._config)
        )

    def prepare_ordering(self, order) -> None:
        if order is None:
            order = vertex_ordering(
                self.search_graph, self._config.ordering, self._eta
            )
        self._order = list(order)
        self.rank = {v: i for i, v in enumerate(self._order)}
        self._backbone = self.search_graph.to_deterministic()
        self.ctx = PivotContext.from_backbone(self._backbone, self._k)

    def search_size(self) -> int:
        return self.search_graph.num_vertices

    def context(self):
        return (
            list(self.search_graph.vertices()),
            self.ctx.color,
            list(self._backbone.edges()),
        )

    def bind_observer(self, obs) -> None:
        # Recursion paths already carry vertex labels; nothing to wire.
        pass

    def bind_sanitizer(self, san):
        return san

    def roots(self, seeds):
        if seeds is None:
            return self._order
        seed_set = set(seeds)
        return [v for v in self._order if v in seed_set]

    def root_state(self, v):
        return initial_candidates(self.search_graph, v, self._eta, self.rank)

    # -- hot path ------------------------------------------------------
    def search_ops(self) -> SearchOps:
        graph = self.search_graph
        eta = self._eta
        ctx = self.ctx
        strategy = self._strategy
        color = ctx.color
        rank_of = self.rank.__getitem__
        raise_lower_bound = ctx.raise_lower_bound
        color_bound = self._config.kpivot == "color"

        def open_node(c, size):
            keys = sorted(c, key=rank_of)
            raise_lower_bound(keys, size)
            if len(keys) == 1:
                return keys, keys[0]
            return keys, strategy(keys, ctx)

        def color_reaches(vertices, need):
            return len({color[v] for v in vertices}) >= need

        def expand(u, c, x, q, r, need1):
            q_new = q * c[u]
            c_new = generate_set(graph, u, c, q_new, eta)
            if need1 <= 0:
                viable = True
            elif len(c_new) < need1:
                viable = False
            elif color_bound:
                viable = len({color[v] for v in c_new}) >= need1
            else:
                viable = True
            # A size-pruned branch never reads X, so the projection is
            # deferred into the viable case.
            x_new = generate_set(graph, u, x, q_new, eta) if viable else None
            return q_new, c_new, x_new, None, viable

        def retract(u, c, x, c_child, x_token):
            x[u] = c.pop(u)
            return c, x

        return SearchOps(
            open_node=open_node,
            lb_refresh=raise_lower_bound,
            color_reaches=color_reaches,
            expand=expand,
            retract=retract,
            decode=frozenset,
        )


register_backend("dict", DictStateOps)


class PivotEnumerator:
    """One configured enumeration run over an uncertain graph.

    Parameters
    ----------
    graph:
        The uncertain graph to search.
    k:
        Minimum clique size (positive integer).
    eta:
        Probability threshold in ``(0, 1]``.
    config:
        A :class:`~repro.core.config.PivotConfig`; defaults to the
        paper's ``PMUC+`` settings.
    on_clique:
        Optional streaming sink; suppresses accumulation when given.
    limit:
        Optional cap on the number of cliques to emit; the search stops
        cleanly once reached (useful for existence checks and top-k
        style probing of enormous result sets).
    """

    def __init__(
        self,
        graph: UncertainGraph,
        k: int,
        eta,
        config: PivotConfig = PMUC_PLUS_CONFIG,
        on_clique: Optional[Sink] = None,
        limit: Optional[int] = None,
    ):
        if not isinstance(k, int) or k < 1:
            raise ParameterError(f"k must be a positive integer, got {k!r}")
        if not 0 < eta <= 1:
            raise ParameterError(f"eta must lie in (0, 1], got {eta!r}")
        if limit is not None and limit < 1:
            raise ParameterError(f"limit must be positive, got {limit!r}")
        self._limit = limit
        self._graph = graph
        self._k = k
        self._eta = eta
        self._config = config
        self._result = EnumerationResult()
        self._sink = (
            on_clique if on_clique is not None else self._result.cliques.append
        )
        self._ctx: PivotContext = PivotContext({}, {}, {}, {}, k)
        self._rank: Dict[Vertex, int] = {}
        self._search_graph = graph
        self._san = None
        #: The run's :class:`~repro.obs.observer.Observer` (or None);
        #: populated by :meth:`run`, left in place afterwards so
        #: callers can read the collected metrics.
        self.obs = None
        #: Which backend :meth:`run` actually executed on ("dict" or
        #: "kernel") — the configured backend may silently fall back.
        self.backend_used = "dict"
        #: :func:`~repro.engine.driver.variant_id` of the compiled
        #: recursion variant :meth:`run` executed (None before any
        #: run).  Bench records stamp this so ``repro.obs diff`` can
        #: refuse cross-variant comparisons.
        self.variant_used: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def stats(self) -> SearchStats:
        """Search counters of the run (final after :meth:`run`)."""
        return self._result.stats

    def run(
        self,
        seeds=None,
        *,
        reduced_graph: Optional[UncertainGraph] = None,
        order: Optional[Sequence[Vertex]] = None,
    ) -> EnumerationResult:
        """Execute the enumeration and return cliques plus statistics.

        Parameters
        ----------
        seeds:
            Optional collection of vertices: only outer-loop roots in
            ``seeds`` are expanded.  Each maximal clique is emitted by
            exactly one root (its minimum vertex in the global
            ordering), so running disjoint seed sets covering ``V`` and
            taking the union reproduces the full result — the basis of
            the partitioned/parallel driver in
            :mod:`repro.core.partition`.
        reduced_graph:
            Optional pre-reduced graph (as returned by
            :func:`reduce_graph` for this configuration); skips the
            in-run reduction.  Used by the parallel driver so workers
            do not repeat the reduction.
        order:
            Optional precomputed vertex ordering over
            ``reduced_graph``; skips the in-run ordering computation.
        """
        if self._config.backend == "kernel":
            kernel = self._make_kernel()
            if kernel is not None:
                self.backend_used = "kernel"
                try:
                    return kernel.run(
                        seeds, reduced_graph=reduced_graph, order=order
                    )
                finally:
                    self.obs = kernel.obs
                    self.variant_used = kernel.variant_used
        # Imported lazily: the engine driver reaches into repro.sanitize
        # / repro.obs, which pull repro.core.config back in — a
        # module-level import would close the cycle through the
        # repro.core package __init__.
        from repro.engine.driver import SearchEngine

        ops = DictStateOps(self._graph, self._k, self._eta, self._config)
        engine = SearchEngine(
            ops,
            self._k,
            self._eta,
            self._config,
            self._result,
            self._sink,
            self._limit,
        )
        self.backend_used = "dict"
        try:
            return engine.run(
                seeds, reduced_graph=reduced_graph, order=order
            )
        finally:
            self._san = engine.san
            self.obs = engine.obs
            self.variant_used = engine.variant
            self._ctx = ops.ctx
            self._rank = ops.rank
            self._search_graph = ops.search_graph

    # ------------------------------------------------------------------
    def _make_kernel(self):
        """Build the bitset fast path, or None when unsupported.

        The kernel requires float (or int) probabilities and ``eta``;
        exact :class:`~fractions.Fraction` runs silently keep the dict
        path, which handles arbitrary numeric types.
        """
        from repro.kernel.enumerate import KernelEnumerator, supports

        if not supports(self._graph, self._eta):
            return None
        return KernelEnumerator(
            self._graph,
            self._k,
            self._eta,
            self._config,
            self._result,
            self._sink,
            self._limit,
        )


def pmuc(
    graph: UncertainGraph,
    k: int,
    eta,
    on_clique: Optional[Sink] = None,
) -> EnumerationResult:
    """Run the paper's ``PMUC`` configuration (Section 4 techniques)."""
    return PivotEnumerator(graph, k, eta, PMUC_CONFIG, on_clique).run()


def pmuc_plus(
    graph: UncertainGraph,
    k: int,
    eta,
    on_clique: Optional[Sink] = None,
) -> EnumerationResult:
    """Run the paper's ``PMUC+`` configuration (Sections 4 and 5)."""
    return PivotEnumerator(graph, k, eta, PMUC_PLUS_CONFIG, on_clique).run()
