"""``PMUC`` / ``PMUC+`` — pivot-based enumeration (Algorithm 3).

The enumerator keeps the ``R / C / X`` discipline of Algorithm 1 but
prunes candidate expansions with the periphery sets of Section 4:

* **M-pivot** (Lemma 3): after fully exploring the pivot branch
  ``R ∪ {u}``, the maximum η-clique ``Q`` found in it is a valid
  periphery — candidates inside ``Q`` need not be expanded, because any
  maximal clique they could lead to is either ``Q`` itself (already
  emitted inside the pivot branch) or a non-maximal subset of ``Q``.
* **improved M-pivot** (Lemma 4): ``Q`` is refreshed whenever *any*
  later branch returns a larger maximum η-clique.
* **K-pivot** (Lemmas 5–6): expansion stops once the remaining
  candidates — counted plainly or as color classes — cannot lift ``R``
  to ``k`` vertices; the remaining set is then a periphery on its own.

The two stopping rules are applied independently, never as a merged
periphery set (whose joint soundness the paper does not establish):
each time the loop stops, the set of remaining candidates is a valid
periphery under one lemma by itself.

The per-branch bookkeeping mirrors the paper exactly: ``P`` threads the
maximum η-clique containing ``R`` found so far through the recursion
(line 13/16-18 of Algorithm 3), because — unlike the deterministic
Bron–Kerbosch pivot — the periphery cannot be computed before the pivot
branch has been explored.
"""

from __future__ import annotations

import sys
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.exceptions import ParameterError
from repro.core.candidates import generate_set, initial_candidates
from repro.core.config import PMUC_CONFIG, PMUC_PLUS_CONFIG, PivotConfig
from repro.core.pivot import PivotContext, get_strategy
from repro.core.stats import EnumerationResult, SearchStats
from repro.reduction.ordering import vertex_ordering
from repro.reduction.topk_core import topk_core
from repro.reduction.topk_triangle import topk_triangle
from repro.uncertain.graph import UncertainGraph, Vertex

Sink = Callable[[frozenset], None]


class _StopEnumeration(Exception):
    """Internal signal: the configured output limit was reached."""


def reduce_graph(
    graph: UncertainGraph, k: int, eta, config: PivotConfig
) -> UncertainGraph:
    """Apply the configured pre-enumeration graph reduction.

    Reductions drop vertices that cannot appear in any maximal
    ``(k, η)``-clique; they are only sound for ``k >= 2`` (core) and
    ``k >= 3`` (triangle), because smaller cliques need no incident
    structure at all.  Exposed at module level so the partitioned and
    parallel drivers can reduce once and ship the result to workers.
    """
    mode = config.reduction
    if mode == "off" or k < 2:
        return graph
    reduced = topk_core(graph, k - 1, eta)
    if mode == "triangle" and k >= 3:
        reduced = topk_triangle(reduced, k - 2, eta)
    return reduced


class PivotEnumerator:
    """One configured enumeration run over an uncertain graph.

    Parameters
    ----------
    graph:
        The uncertain graph to search.
    k:
        Minimum clique size (positive integer).
    eta:
        Probability threshold in ``(0, 1]``.
    config:
        A :class:`~repro.core.config.PivotConfig`; defaults to the
        paper's ``PMUC+`` settings.
    on_clique:
        Optional streaming sink; suppresses accumulation when given.
    limit:
        Optional cap on the number of cliques to emit; the search stops
        cleanly once reached (useful for existence checks and top-k
        style probing of enormous result sets).
    """

    def __init__(
        self,
        graph: UncertainGraph,
        k: int,
        eta,
        config: PivotConfig = PMUC_PLUS_CONFIG,
        on_clique: Optional[Sink] = None,
        limit: Optional[int] = None,
    ):
        if not isinstance(k, int) or k < 1:
            raise ParameterError(f"k must be a positive integer, got {k!r}")
        if not 0 < eta <= 1:
            raise ParameterError(f"eta must lie in (0, 1], got {eta!r}")
        if limit is not None and limit < 1:
            raise ParameterError(f"limit must be positive, got {limit!r}")
        self._limit = limit
        self._graph = graph
        self._k = k
        self._eta = eta
        self._config = config
        self._result = EnumerationResult()
        self._sink = (
            on_clique if on_clique is not None else self._result.cliques.append
        )
        self._strategy = get_strategy(config.pivot)
        self._ctx: PivotContext = PivotContext({}, {}, {}, {}, k)
        self._rank: Dict[Vertex, int] = {}
        self._search_graph = graph
        self._san = None
        #: The run's :class:`~repro.obs.observer.Observer` (or None);
        #: populated by :meth:`run`, left in place afterwards so
        #: callers can read the collected metrics.
        self.obs = None

    # ------------------------------------------------------------------
    @property
    def stats(self) -> SearchStats:
        """Search counters of the (possibly still running) run."""
        return self._result.stats

    def run(
        self,
        seeds=None,
        *,
        reduced_graph: Optional[UncertainGraph] = None,
        order: Optional[Sequence[Vertex]] = None,
    ) -> EnumerationResult:
        """Execute the enumeration and return cliques plus statistics.

        Parameters
        ----------
        seeds:
            Optional collection of vertices: only outer-loop roots in
            ``seeds`` are expanded.  Each maximal clique is emitted by
            exactly one root (its minimum vertex in the global
            ordering), so running disjoint seed sets covering ``V`` and
            taking the union reproduces the full result — the basis of
            the partitioned/parallel driver in
            :mod:`repro.core.partition`.
        reduced_graph:
            Optional pre-reduced graph (as returned by
            :func:`reduce_graph` for this configuration); skips the
            in-run reduction.  Used by the parallel driver so workers
            do not repeat the reduction.
        order:
            Optional precomputed vertex ordering over
            ``reduced_graph``; skips the in-run ordering computation.
        """
        if self._config.backend == "kernel":
            kernel = self._make_kernel()
            if kernel is not None:
                try:
                    return kernel.run(
                        seeds, reduced_graph=reduced_graph, order=order
                    )
                finally:
                    self.obs = kernel.obs
        # Imported lazily: repro.sanitize / repro.obs pull in
        # repro.core.config (and the sanitizer repro.core.pivot), so a
        # module-level import here would close an import cycle through
        # the repro.core package __init__.
        from repro.obs.observer import build_observer
        from repro.sanitize.sanitizer import build_sanitizer

        san = self._san = build_sanitizer(
            self._graph, self._k, self._eta, self._config, "dict"
        )
        obs = self.obs = build_observer(self._config, "dict")
        if obs is not None:
            obs.on_gauge("vertices_input", self._graph.num_vertices)
        start = perf_counter()
        self._search_graph = (
            reduced_graph if reduced_graph is not None else self._reduce()
        )
        reduction_s = perf_counter() - start
        start = perf_counter()
        if order is None:
            order = vertex_ordering(
                self._search_graph, self._config.ordering, self._eta
            )
        self._rank = {v: i for i, v in enumerate(order)}
        backbone = self._search_graph.to_deterministic()
        self._ctx = PivotContext.from_backbone(backbone, self._k)
        ordering_s = perf_counter() - start
        if obs is not None:
            obs.on_gauge(
                "vertices_search", self._search_graph.num_vertices
            )
        if san is not None:
            san.on_reduced(list(self._search_graph.vertices()))
            san.on_context(self._ctx.color, list(backbone.edges()))
        seed_set = None if seeds is None else set(seeds)
        # The recursion is at most one level per clique member; make
        # sure graphs with very large cliques cannot hit the default
        # interpreter limit mid-search.
        previous_limit = sys.getrecursionlimit()
        needed = self._search_graph.num_vertices + 100
        if needed > previous_limit:
            sys.setrecursionlimit(needed)
        complete = seeds is None
        start = perf_counter()
        try:
            for v in order:
                if seed_set is not None and v not in seed_set:
                    continue
                c, x = initial_candidates(
                    self._search_graph, v, self._eta, self._rank
                )
                self._pmuce([v], 1, c, x, [v], depth=1)
        except _StopEnumeration:
            complete = False
        finally:
            if needed > previous_limit:
                sys.setrecursionlimit(previous_limit)
        recursion_s = perf_counter() - start
        start = perf_counter()
        if san is not None:
            san.on_finish(complete)
        sanitize_s = perf_counter() - start
        if obs is not None:
            obs.on_phase("reduction", reduction_s)
            obs.on_phase("ordering", ordering_s)
            obs.on_phase("recursion", recursion_s)
            obs.on_phase("sanitize", sanitize_s)
            obs.on_finish(self._result.stats)
        return self._result

    # ------------------------------------------------------------------
    def _make_kernel(self):
        """Build the bitset fast path, or None when unsupported.

        The kernel requires float (or int) probabilities and ``eta``;
        exact :class:`~fractions.Fraction` runs silently keep the dict
        path, which handles arbitrary numeric types.
        """
        from repro.kernel.enumerate import KernelEnumerator, supports

        if not supports(self._graph, self._eta):
            return None
        return KernelEnumerator(
            self._graph,
            self._k,
            self._eta,
            self._config,
            self._result,
            self._sink,
            self._limit,
        )

    def _reduce(self) -> UncertainGraph:
        """Apply the configured pre-enumeration graph reduction."""
        return reduce_graph(self._graph, self._k, self._eta, self._config)

    def _candidate_bound(self, vertices) -> int:
        """Upper bound on how many of ``vertices`` one clique can use."""
        if self._config.kpivot == "color":
            color = self._ctx.color
            return len({color[v] for v in vertices})
        return len(vertices)

    def _emit(self, r: List[Vertex]) -> None:
        self._result.stats.outputs += 1
        self._sink(frozenset(r))
        if self._limit is not None and self._result.stats.outputs >= self._limit:
            raise _StopEnumeration

    # ------------------------------------------------------------------
    def _pmuce(
        self,
        r: List[Vertex],
        q,
        c: Dict[Vertex, object],
        x: Dict[Vertex, object],
        p: List[Vertex],
        depth: int,
    ) -> List[Vertex]:
        """Recursive procedure ``PMUCE`` (Algorithm 3, lines 6-21).

        Returns the maximum η-clique containing ``r`` found in this
        subtree (the threaded ``P`` argument, possibly enlarged).
        """
        stats = self._result.stats
        stats.calls += 1
        stats.observe_depth(depth)
        san = self._san
        if san is not None:
            san.on_node(depth)
        obs = self.obs
        if obs is not None:
            obs.on_node(depth, r)
        k = self._k
        if not c and not x:
            if len(r) >= k:
                if san is not None:
                    san.on_emit(r, q, False)
                if obs is not None:
                    obs.on_emit(depth, len(r))
                self._emit(r)
            self._ctx.raise_lower_bound(r, len(r))
            return p
        if not c:
            return p
        # Global lower-bound refresh used by the hybrid pivot strategy:
        # every candidate v participates in the η-clique R ∪ {v}.
        self._ctx.raise_lower_bound(c, len(r) + 1)
        kpivot = self._config.kpivot != "off"
        if kpivot and len(r) + self._candidate_bound(c) < k:
            # The whole candidate set is a K-pivot periphery (Lemma 5/6).
            stats.kpivot_stops += 1
            if obs is not None:
                obs.on_prune("kpivot", depth)
            return p
        mpivot = self._config.mpivot
        rank = self._rank
        keys = sorted(c, key=rank.__getitem__)
        pivot = self._strategy(keys, self._ctx)
        # Rank-ordered work list, pivot first.  The do-while of
        # Algorithm 3 runs while some candidate lies outside the
        # *current* periphery Q: a candidate deferred under an earlier,
        # smaller Q becomes eligible again if Q is later replaced by a
        # clique that does not contain it.  Treating periphery
        # membership as a permanent skip would let a maximal clique
        # whose members are scattered across successive generations of
        # Q be lost, so eligibility is re-evaluated on every pick.
        unexpanded = [pivot] + [v for v in keys if v != pivot]
        periphery: Set[Vertex] = set()
        expanded_any = False
        while True:
            if kpivot and expanded_any:
                # The whole remaining candidate set is a K-pivot
                # periphery on its own (Lemma 5/6) — no reliance on Q.
                if len(r) + self._candidate_bound(unexpanded) < k:
                    stats.kpivot_stops += 1
                    if obs is not None:
                        obs.on_prune("kpivot", depth)
                    break
            u = next((w for w in unexpanded if w not in periphery), None)
            if u is None:
                # Every remaining candidate sits inside the single,
                # final periphery Q (Lemma 3/4) — safe to stop.
                if san is not None:
                    san.on_cover(depth, r, unexpanded, periphery)
                stats.mpivot_skips += len(unexpanded)
                if obs is not None:
                    obs.on_prune("mpivot", depth, len(unexpanded))
                break
            expanded_any = True
            r_u = c[u]
            q_new = q * r_u
            r.append(u)
            c_new = generate_set(self._search_graph, u, c, q_new, self._eta)
            x_new = generate_set(self._search_graph, u, x, q_new, self._eta)
            branch_best = list(r)
            if len(r) + self._candidate_bound(c_new) >= k:
                stats.expansions += 1
                if obs is not None:
                    obs.on_expand(depth)
                branch_best = self._pmuce(
                    r, q_new, c_new, x_new, branch_best, depth + 1
                )
            else:
                stats.size_prunes += 1
                if obs is not None:
                    obs.on_prune("size", depth)
            r.pop()
            if mpivot == "improved" or (mpivot == "basic" and not periphery):
                if len(periphery) < len(branch_best):
                    periphery = set(branch_best)
            if len(p) < len(branch_best):
                p = branch_best
            unexpanded.remove(u)
            del c[u]
            x[u] = r_u
        return p


def pmuc(
    graph: UncertainGraph,
    k: int,
    eta,
    on_clique: Optional[Sink] = None,
) -> EnumerationResult:
    """Run the paper's ``PMUC`` configuration (Section 4 techniques)."""
    return PivotEnumerator(graph, k, eta, PMUC_CONFIG, on_clique).run()


def pmuc_plus(
    graph: UncertainGraph,
    k: int,
    eta,
    on_clique: Optional[Sink] = None,
) -> EnumerationResult:
    """Run the paper's ``PMUC+`` configuration (Sections 4 and 5)."""
    return PivotEnumerator(graph, k, eta, PMUC_PLUS_CONFIG, on_clique).run()
