"""Independent verification of enumeration results.

Downstream pipelines (and this repo's own benchmarks) want a cheap way
to confirm a reported result set without trusting the enumerator that
produced it.  :func:`verify_enumeration` re-checks every reported set
against the definitions only — Eq. 2 for the probability, single-vertex
extension for maximality, streaming dedup/containment indexes (shared
with the runtime sanitizer) for duplicates and nested pairs —
and optionally cross-checks completeness against a second, independent
algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.sanitize.dedup import CliqueStreamIndex
from repro.uncertain.clique_probability import (
    clique_probability,
    is_maximal_eta_clique,
)
from repro.uncertain.graph import UncertainGraph


@dataclass
class VerificationReport:
    """Outcome of :func:`verify_enumeration`."""

    checked: int = 0
    not_eta_cliques: List[frozenset] = field(default_factory=list)
    too_small: List[frozenset] = field(default_factory=list)
    not_maximal: List[frozenset] = field(default_factory=list)
    duplicates: List[frozenset] = field(default_factory=list)
    nested: List[tuple] = field(default_factory=list)
    missing: Optional[List[frozenset]] = None
    spurious: Optional[List[frozenset]] = None

    @property
    def ok(self) -> bool:
        """True when every check passed."""
        problems = (
            self.not_eta_cliques
            or self.too_small
            or self.not_maximal
            or self.duplicates
            or self.nested
            or self.missing
            or self.spurious
        )
        return not problems

    def summary(self) -> str:
        """One-line human-readable verdict."""
        if self.ok:
            return f"OK: {self.checked} maximal (k, η)-cliques verified"
        parts = []
        for label, items in (
            ("below eta", self.not_eta_cliques),
            ("below k", self.too_small),
            ("non-maximal", self.not_maximal),
            ("duplicate", self.duplicates),
            ("nested", self.nested),
            ("missing", self.missing or []),
            ("spurious", self.spurious or []),
        ):
            if items:
                parts.append(f"{len(items)} {label}")
        return "FAILED: " + ", ".join(parts)


def verify_enumeration(
    graph: UncertainGraph,
    k: int,
    eta,
    cliques: Iterable[Iterable],
    cross_check: Optional[str] = None,
) -> VerificationReport:
    """Verify a reported maximal ``(k, η)``-clique collection.

    Checks each reported set is an η-clique of size >= k, is maximal,
    and that the collection has no duplicates or nested pairs.  With
    ``cross_check`` set to an algorithm name (e.g. ``"muc"``), the
    collection is additionally compared against a fresh enumeration by
    that algorithm, populating ``missing`` / ``spurious``.
    """
    report = VerificationReport()
    # Streaming dedup + containment (shared with the runtime
    # sanitizer's S2 check): inverted indexes replace the historical
    # O(n²) all-pairs containment scan, probing only cliques that share
    # a member with the incoming one.
    index = CliqueStreamIndex(track_containment=True)
    for raw in cliques:
        clique = frozenset(raw)
        report.checked += 1
        outcome = index.add(clique)
        if outcome.duplicate:
            report.duplicates.append(clique)
            continue
        for big in outcome.supersets:
            report.nested.append((clique, big))
        for small in outcome.subsets:
            report.nested.append((small, clique))
        if len(clique) < k:
            report.too_small.append(clique)
        if clique_probability(graph, clique) < eta:
            report.not_eta_cliques.append(clique)
        elif not is_maximal_eta_clique(graph, clique, eta):
            report.not_maximal.append(clique)
    if cross_check is not None:
        from repro.core.api import enumerate_maximal_cliques

        truth = set(
            enumerate_maximal_cliques(graph, k, eta, cross_check).cliques
        )
        seen = index.seen()
        report.missing = sorted(truth - seen, key=repr)
        report.spurious = sorted(seen - truth, key=repr)
    return report
