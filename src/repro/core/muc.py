"""``MUC`` — set-enumeration baseline (Algorithm 1, Mukherjee et al.).

The recursive backtracking procedure maintains an η-clique ``R``, a
candidate dictionary ``C`` and an explored dictionary ``X`` under the
invariant that ``R ∪ {v}`` is an η-clique exactly for ``v ∈ C ∪ X``.
Candidates are expanded in lexicographic order; a set is emitted when
``C ∪ X = ∅`` and ``|R| >= k``.

Two variants are exposed:

* ``use_reduction=False`` — the original algorithm of Mukherjee et al.,
  run per connected component;
* ``use_reduction=True`` — the state-of-the-art comparator of Li et
  al. (the paper's ``MUC``), which first prunes the graph to its
  maximal ``(Top_{k-1}, η)``-core and then runs the same enumeration.

This baseline is intentionally faithful to Algorithm 1, including its
weakness: to emit a maximal clique ``H`` it explores every subset of
``H`` (see ``SearchStats.calls``), which is what the pivot algorithms
of :mod:`repro.core.pmuc` eliminate.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.exceptions import ParameterError
from repro.core.candidates import generate_set
from repro.core.stats import EnumerationResult, SearchStats
from repro.reduction.topk_core import topk_core
from repro.uncertain.graph import UncertainGraph, Vertex

Sink = Callable[[frozenset], None]


class _StopEnumeration(Exception):
    """Internal signal: the configured output limit was reached."""


def muc(
    graph: UncertainGraph,
    k: int,
    eta,
    use_reduction: bool = True,
    on_clique: Optional[Sink] = None,
    limit: Optional[int] = None,
) -> EnumerationResult:
    """Enumerate all maximal ``(k, η)``-cliques with Algorithm 1.

    Parameters
    ----------
    graph:
        The uncertain graph.
    k:
        Minimum clique size (positive integer).
    eta:
        Probability threshold in ``(0, 1]``.
    use_reduction:
        Apply the ``(Top_{k-1}, η)``-core pre-reduction first (the
        state-of-the-art ``MUC`` configuration of Li et al.).
    on_clique:
        Optional callback invoked on each maximal clique as it is
        found; when given, cliques are *not* accumulated in the result.
    limit:
        Optional cap on the number of cliques to emit; enumeration
        stops cleanly once reached.

    Returns
    -------
    EnumerationResult
        The maximal cliques (unless ``on_clique`` is given) and the
        search statistics.
    """
    _check_parameters(k, eta)
    if limit is not None and limit < 1:
        raise ParameterError(f"limit must be positive, got {limit!r}")
    result = EnumerationResult()
    sink = on_clique if on_clique is not None else result.cliques.append

    def emit(members: List[Vertex]) -> None:
        result.stats.outputs += 1
        sink(frozenset(members))
        if limit is not None and result.stats.outputs >= limit:
            raise _StopEnumeration

    # The core reduction discards isolated vertices, which are valid
    # maximal (1, η)-cliques, so it is only sound for k >= 2.
    search_graph = graph
    if use_reduction and k >= 2:
        search_graph = topk_core(graph, k - 1, eta)
    engine = _MucEngine(search_graph, k, eta, result.stats, emit)
    try:
        for component in search_graph.connected_components():
            engine.run_component(component)
    except _StopEnumeration:
        pass
    return result


class _MucEngine:
    """One enumeration run of Algorithm 1 over a fixed graph."""

    def __init__(
        self,
        graph: UncertainGraph,
        k: int,
        eta,
        stats: SearchStats,
        emit: Callable[[List[Vertex]], None],
    ):
        self._graph = graph
        self._k = k
        self._eta = eta
        self._stats = stats
        self._emit = emit

    def run_component(self, component: List[Vertex]) -> None:
        """Enumerate the maximal cliques inside one connected component."""
        candidates: Dict[Vertex, object] = {
            v: 1 for v in sorted(component, key=repr)
        }
        self._recurse([], 1, candidates, {}, depth=1)

    def _recurse(
        self,
        r: List[Vertex],
        q,
        c: Dict[Vertex, object],
        x: Dict[Vertex, object],
        depth: int,
    ) -> None:
        stats = self._stats
        stats.calls += 1
        stats.observe_depth(depth)
        if not c and not x:
            if len(r) >= self._k:
                self._emit(r)
            return
        # Lexicographic expansion over a snapshot of C (Algorithm 1 l.7).
        for v in sorted(c, key=repr):
            rv = c[v]
            q_new = q * rv
            r.append(v)
            c_new = generate_set(self._graph, v, c, q_new, self._eta)
            c_new.pop(v, None)
            x_new = generate_set(self._graph, v, x, q_new, self._eta)
            if len(r) + len(c_new) >= self._k:
                stats.expansions += 1
                self._recurse(r, q_new, c_new, x_new, depth + 1)
            else:
                stats.size_prunes += 1
            r.pop()
            del c[v]
            x[v] = rv


def _check_parameters(k: int, eta) -> None:
    if not isinstance(k, int) or k < 1:
        raise ParameterError(f"k must be a positive integer, got {k!r}")
    if not 0 < eta <= 1:
        raise ParameterError(f"eta must lie in (0, 1], got {eta!r}")
