"""Kernel-backed graph reduction, orderings and coloring on int ids.

These are the int-id counterparts of :mod:`repro.reduction` and the
deterministic helpers the enumerator consults.  Every function here is
*tie-break compatible* with its dict sibling: given the same source
graph it produces the same vertex (label) sequences, same color
assignment and same surviving subgraph, so the kernel backend can swap
in without perturbing pivot choices or ``SearchStats`` counters.

Results are unique where the theory says so (the maximal
``(Top_k, η)``-core and ``(Top_k, η)``-triangle subgraphs do not depend
on peel order), but iteration order still leaks into downstream
insertion order — hence the explicit mirroring of the dict scan orders
documented in :class:`repro.kernel.compact.CompactGraph`.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

from repro.exceptions import ParameterError
from repro.kernel.compact import CompactGraph


def prefix_count(sorted_desc: List[float], eta: float) -> int:
    """Longest prefix of a descending list whose product stays >= eta."""
    product = 1
    count = 0
    for p in sorted_desc:
        product = product * p
        if product >= eta:
            count += 1
        else:
            break
    return count


# ----------------------------------------------------------------------
# (Top_k, eta)-core
# ----------------------------------------------------------------------
def topk_core_ids(cg: CompactGraph, k: int, eta: float) -> List[int]:
    """Ids (ascending) of the maximal ``(Top_k, η)``-core of ``cg``."""
    if k < 0:
        raise ParameterError(f"k must be non-negative, got {k}")
    n = cg.n
    alive = (1 << n) - 1 if n else 0
    incident = [sorted(row, reverse=True) for row in cg.nbr_probs]
    topdeg = [prefix_count(incident[v], eta) for v in range(n)]
    queue = [v for v in range(n) if topdeg[v] < k]
    while queue:
        v = queue.pop()
        if not alive >> v & 1:
            continue
        alive &= ~(1 << v)
        for u, p in zip(cg.nbr_ids[v], cg.nbr_probs[v]):
            if not alive >> u & 1:
                continue
            incident[u].remove(p)
            if topdeg[u] >= k:
                topdeg[u] = prefix_count(incident[u], eta)
                if topdeg[u] < k:
                    queue.append(u)
    out = []
    while alive:
        low = alive & -alive
        out.append(low.bit_length() - 1)
        alive ^= low
    return out


# ----------------------------------------------------------------------
# (Top_k, eta)-triangle
# ----------------------------------------------------------------------
def _top_degree(open_probs: Dict[int, float], p_e: float, eta: float) -> int:
    # Fast path: when the product over *all* open triangles clears η
    # with margin, every descending prefix clears it too (factors are
    # ≤ 1, and float partial products are non-increasing regardless of
    # order), so the answer is the triangle count — no sort needed.
    # The 1e-9 relative band dwarfs any order-dependent rounding drift
    # (≤ ~2m·2⁻⁵³ for m factors); in-band cases fall through to the
    # exact sorted scan, so every count matches it.
    product = p_e
    for p in open_probs.values():
        product = product * p
    if product >= eta + eta * 1e-9:
        return len(open_probs)
    product = p_e
    count = 0
    for p in sorted(open_probs.values(), reverse=True):
        product = product * p
        if product >= eta:
            count += 1
        else:
            break
    return count


def topk_triangle_edge_ids(
    cg: CompactGraph, k: int, eta: float
) -> List[Tuple[int, int]]:
    """Surviving edges of the maximal ``(Top_k, η)``-triangle subgraph.

    Edges are canonical id pairs (label-ordered, see
    :meth:`CompactGraph.normalize_pair`) in deterministic edge-scan
    order, ready for :meth:`CompactGraph.edge_induced`.  Common
    neighborhoods come from one bitset ``&`` per edge — the dominant
    cost of Algorithm 4 — instead of a hash-join of adjacency dicts.
    """
    if k < 0:
        raise ParameterError(f"k must be non-negative, got {k}")
    prob = cg.prob
    nbr_ids = cg.nbr_ids
    nbr_probs = cg.nbr_probs
    tri: Dict[Tuple[int, int], Dict[int, float]] = {}
    for i, j, _p in cg.edges_in_insertion_order():
        e = cg.normalize_pair(i, j)
        pi, pj = prob[i], prob[j]
        # Hash-join through the sparser endpoint: its neighbor
        # probabilities ride along with the ids, so each common
        # neighbor costs one dict probe — against bitset extraction
        # plus two probe lookups.  Swapping the endpoints only swaps
        # the operands of one float multiply, which IEEE rounds
        # identically, and ``opens`` order is irrelevant — degrees
        # sort its values and the maximal triangle subgraph is unique
        # regardless of peel order.
        if len(pi) <= len(pj):
            ids_a, probs_a, other = nbr_ids[i], nbr_probs[i], pj
        else:
            ids_a, probs_a, other = nbr_ids[j], nbr_probs[j], pi
        opens: Dict[int, float] = {}
        for w, pw in zip(ids_a, probs_a):
            if w in other:
                opens[w] = pw * other[w]
        tri[e] = opens
    tdeg = {e: _top_degree(tri[e], prob[e[0]][e[1]], eta) for e in tri}
    queue = [e for e, t in tdeg.items() if t < k]
    removed = set()
    while queue:
        e = queue.pop()
        if e in removed:
            continue
        removed.add(e)
        u, v = e
        for w in list(tri[e]):
            for side in (cg.normalize_pair(u, w), cg.normalize_pair(v, w)):
                if side in removed:
                    continue
                apex = v if side == cg.normalize_pair(u, w) else u
                tri[side].pop(apex, None)
                if tdeg[side] >= k:
                    tdeg[side] = _top_degree(
                        tri[side], prob[side[0]][side[1]], eta
                    )
                    if tdeg[side] < k:
                        queue.append(side)
        tri[e] = {}
    return [e for e in tdeg if e not in removed]


# ----------------------------------------------------------------------
# orderings
# ----------------------------------------------------------------------
def topk_core_ordering_ids(cg: CompactGraph, eta: float) -> List[int]:
    """Minimum η-topdegree peeling order over int ids.

    Heap ties break on ``repr`` of the *original labels*, exactly like
    :func:`repro.reduction.ordering.topk_core_ordering`.
    """
    n = cg.n
    # One repr per vertex, not one per requeue push — peeling pushes
    # each vertex O(degree) times.
    reprs = [repr(label) for label in cg.labels]
    incident = [sorted(row, reverse=True) for row in cg.nbr_probs]
    topdeg = [prefix_count(incident[v], eta) for v in range(n)]
    heap = [(topdeg[v], reprs[v], v) for v in range(n)]
    heapq.heapify(heap)
    alive = (1 << n) - 1 if n else 0
    order: List[int] = []
    while heap:
        d, _tie, v = heapq.heappop(heap)
        if not alive >> v & 1 or d != topdeg[v]:
            continue
        alive &= ~(1 << v)
        order.append(v)
        for u, p in zip(cg.nbr_ids[v], cg.nbr_probs[v]):
            if alive >> u & 1:
                incident[u].remove(p)
                new_deg = prefix_count(incident[u], eta)
                if new_deg != topdeg[u]:
                    topdeg[u] = new_deg
                    heapq.heappush(heap, (new_deg, reprs[u], u))
    return order


def degeneracy_ordering_ids(cg: CompactGraph) -> List[int]:
    """Minimum-degree peeling order, bucket-queue, on int ids.

    Mirrors :func:`repro.deterministic.core.degeneracy_ordering` on the
    backbone, including its neighbor iteration order (global edge-scan
    order, see :meth:`CompactGraph.backbone_adjacency`).
    """
    n = cg.n
    adj = cg.backbone_adjacency()
    degree = [len(adj[v]) for v in range(n)]
    max_deg = max(degree, default=0)
    buckets: List[List[int]] = [[] for _ in range(max_deg + 1)]
    for v in range(n):
        buckets[degree[v]].append(v)
    removed = 0
    order: List[int] = []
    pointer = 0
    while len(order) < n:
        while pointer <= max_deg and not buckets[pointer]:
            pointer += 1
        v = buckets[pointer].pop()
        if removed >> v & 1:
            continue
        if degree[v] != pointer:
            continue
        removed |= 1 << v
        order.append(v)
        for u in adj[v]:
            if not removed >> u & 1:
                degree[u] -= 1
                buckets[degree[u]].append(u)
                if degree[u] < pointer:
                    pointer = degree[u]
    return order


def vertex_ordering_ids(cg: CompactGraph, name: str, eta=None) -> List[int]:
    """Dispatch an ordering by configuration name, over int ids."""
    if name == "as-is":
        return list(range(cg.n))
    if name == "degeneracy":
        return degeneracy_ordering_ids(cg)
    if name == "topk-core":
        if eta is None:
            raise ParameterError("topk-core ordering requires eta")
        return topk_core_ordering_ids(cg, eta)
    raise ParameterError(f"unknown ordering {name!r}")


# ----------------------------------------------------------------------
# coloring
# ----------------------------------------------------------------------
def greedy_coloring_ids(cg: CompactGraph) -> List[int]:
    """Greedy coloring in descending-degree order (stable by id).

    Same processing order as the dict path (Python's stable sort breaks
    degree ties by insertion order = id), hence identical colors.
    """
    n = cg.n
    order = sorted(range(n), key=cg.degree, reverse=True)
    colors = [-1] * n
    for v in order:
        taken = {colors[u] for u in cg.nbr_ids[v] if colors[u] >= 0}
        color = 0
        while color in taken:
            color += 1
        colors[v] = color
    return colors
