"""Bitset/integer fast path of the pivot enumerator.

This module re-implements the recursion of
:class:`repro.core.pmuc.PivotEnumerator` over the
:class:`~repro.kernel.compact.CompactGraph` representation:

* ``C`` and ``X`` are **bitsets** (Python big-ints).  The
  ``GenerateSet`` kernel of Algorithm 1 becomes one word-parallel
  ``bits & nbr_bits[u]`` followed by a per-survivor threshold test —
  non-neighbors cost one AND for the whole set instead of one hash
  probe each.
* Per-candidate clique probabilities are tracked **additively** in the
  log domain: the shared array ``sv[w]`` holds
  ``-log Pr(R ∪ {w})/Pr(R)`` (the dict backend's ``r`` value) and the
  scalar ``nlq`` holds ``-log Pr(R)``, so the η-threshold test is one
  addition and one comparison.
* Vertices are relabeled so that **id order equals enumeration rank**:
  iterating a candidate bitset from the lowest bit up yields the
  rank-sorted work list with no sorting at all.

**Exactness guard.** The dict backend decides ``q_new * r_new >= eta``
with IEEE-754 products; log-domain sums round differently.  Whenever
the additive test lands within a conservative error band of the
threshold (``REL_GUARD`` — orders of magnitude wider than the maximal
accumulated float error), the kernel replays the dict backend's exact
multiplication sequence for that candidate and uses *its* verdict.
Outside the band the two tests provably agree, so the kernel emits
byte-identical clique sets and identical ``SearchStats`` counters.

Only float (or int) probabilities and thresholds are supported;
:class:`~fractions.Fraction` graphs raise
:class:`~repro.exceptions.KernelBackendError` at compile time and the
caller falls back to the dict backend.
"""

from __future__ import annotations

import sys
from math import log
from time import perf_counter
from typing import Callable, List, Optional, Sequence

from repro.exceptions import KernelBackendError
from repro.core.stats import EnumerationResult
from repro.kernel.compact import CompactGraph
from repro.kernel.reduction import (
    greedy_coloring_ids,
    topk_core_ids,
    topk_triangle_edge_ids,
    vertex_ordering_ids,
)
from repro.uncertain.graph import UncertainGraph

#: Relative half-width of the boundary band inside which the additive
#: log-domain test defers to an exact float replay.  Accumulated
#: floating-point error across both domains is bounded well below
#: ``1e-12 * (1 + |total|)`` for any feasible recursion depth; the
#: guard is ~1000x wider.
REL_GUARD = 1e-9


class _StopKernel(Exception):
    """Internal signal: the configured output limit was reached."""


#: Ascending bit offsets of every byte value.  The hot loops iterate a
#: candidate bitset as ``bits.to_bytes(..., "little")`` plus one table
#: lookup per non-zero byte: the byte scan runs at C speed, zero bytes
#: cost one truth test, and no per-bit big-int arithmetic
#: (``b & -b`` / ``bit_length``) is needed at all.
_BYTE_BITS = tuple(
    tuple(i for i in range(8) if v >> i & 1) for v in range(256)
)


def supports(graph: UncertainGraph, eta) -> bool:
    """True when ``graph``/``eta`` can run on the kernel backend."""
    if not isinstance(eta, (float, int)):
        return False
    return all(
        isinstance(p, (float, int)) for _u, _v, p in graph.edges()
    )


class KernelEnumerator:
    """One kernel-backend enumeration run.

    Mirrors the control flow of ``PivotEnumerator._pmuce`` statement
    for statement (same pivot strategies, same M-/K-pivot stopping
    rules, same statistics updates) so the two backends are
    interchangeable; see ``tests/test_kernel_parity.py``.
    """

    def __init__(
        self,
        graph: UncertainGraph,
        k: int,
        eta,
        config,
        result: EnumerationResult,
        sink: Callable[[frozenset], None],
        limit: Optional[int],
    ):
        if not isinstance(eta, (float, int)):
            raise KernelBackendError(
                f"kernel backend requires a float eta, got {type(eta).__name__}"
            )
        self._graph = graph
        self._k = k
        self._eta = float(eta)
        self._nl_eta = -log(self._eta) if self._eta < 1.0 else 0.0
        # Constant half-width of the exactness guard band.  Near the
        # decision boundary ``|total| ~ nl_eta``, so a band scaled to
        # ``nl_eta`` dominates the accumulated float error (~1e-12
        # relative) by three orders of magnitude while staying narrow
        # enough that exact replays are rare.
        self._guard = REL_GUARD * (2.0 + 2.0 * self._nl_eta)
        self._config = config
        self._result = result
        self._sink = sink
        self._limit = limit
        # Hot-loop flags hoisted out of the recursion.
        self._hybrid = config.pivot == "hybrid"
        self._kpivot = config.kpivot != "off"
        self._color_bound = config.kpivot == "color"
        self._mpivot = config.mpivot
        #: The run's :class:`~repro.obs.observer.Observer` (or None);
        #: populated by :meth:`run`, mirrored onto the delegating
        #: ``PivotEnumerator`` afterwards.
        self.obs = None
        # Phase timings recorded by _prepare() for the observer.
        self._reduction_s = 0.0
        self._ordering_s = 0.0
        # Populated by _prepare():
        self._cg: CompactGraph = CompactGraph([])
        self._sv: List[float] = []
        self._deg: List[int] = []
        self._color: List[int] = []
        self._colnum: List[int] = []
        self._lb: List[int] = []

    # ------------------------------------------------------------------
    # preparation: reduction, ordering, coloring — all on int ids
    # ------------------------------------------------------------------
    def _reduce_ids(self, cg: CompactGraph) -> CompactGraph:
        """Kernel counterpart of ``PivotEnumerator._reduce``."""
        mode = self._config.reduction
        k = self._k
        if mode == "off" or k < 2:
            return cg
        reduced = cg.induced(topk_core_ids(cg, k - 1, self._eta))
        if mode == "triangle" and k >= 3:
            reduced = reduced.edge_induced(
                topk_triangle_edge_ids(reduced, k - 2, self._eta)
            )
        return reduced

    def _prepare(
        self,
        reduced_graph: Optional[UncertainGraph],
        order_labels: Optional[Sequence],
    ) -> None:
        start = perf_counter()
        if reduced_graph is not None:
            cg_red = CompactGraph.from_uncertain(reduced_graph)
        else:
            cg_red = self._reduce_ids(
                CompactGraph.from_uncertain(self._graph)
            )
        self._reduction_s = perf_counter() - start
        start = perf_counter()
        if order_labels is not None:
            order = [cg_red.index[v] for v in order_labels]
        else:
            order = vertex_ordering_ids(
                cg_red, self._config.ordering, self._eta
            )
        # Pivot context (degree / color / color number) is computed in
        # the reduced graph's insertion-order ids — the same processing
        # order as the dict path — then permuted into rank ids.
        colors_red = greedy_coloring_ids(cg_red)
        self._cg = cg_red.relabeled(order)
        self._deg = [cg_red.degree(old) for old in order]
        self._color = [colors_red[old] for old in order]
        self._colnum = [
            len({colors_red[u] for u in cg_red.nbr_ids[old]})
            for old in order
        ]
        n = self._cg.n
        self._lb = [1] * n
        self._sv = [0.0] * n
        # Fused integer sort keys for the hybrid pivot rule: comparing
        # ``colnum * (n + 1) + lb`` (resp. ``deg * (n + 1) + colnum``)
        # is the lexicographic comparison of the pairs because both
        # minor terms are bounded by ``n < n + 1``.  ``max`` over a
        # list-indexing key runs at C speed and keeps the dict
        # backend's first-max-wins tie-breaking.
        m = n + 1
        self._cn_base = [c * m for c in self._colnum]
        self._cn_lb = [base + 1 for base in self._cn_base]
        self._deg_cn = [
            d * m + c for d, c in zip(self._deg, self._colnum)
        ]
        # Hot-loop aliases (the recursion reads these every expansion).
        self._nbr_bits = self._cg.nbr_bits
        # Dense ``-log p`` rows: ``nlogr[u][w]`` is read millions of
        # times per run, and list indexing beats dict probing.  Only
        # neighbor slots are ever read (survivors come out of
        # ``bits & nbr_bits[u]``), so the 0.0 filler is never seen.
        # O(n^2) pointers is fine at benchmark scale; huge graphs keep
        # the sparse per-vertex dicts.
        if n <= 2048:
            nbr_ids = self._cg.nbr_ids
            nbr_nlogs = self._cg.nbr_nlogs
            rows: List[List[float]] = []
            for u in range(n):
                row = [0.0] * n
                for j, nl in zip(nbr_ids[u], nbr_nlogs[u]):
                    row[j] = nl
                rows.append(row)
            self._nlogr = rows
        else:
            self._nlogr = self._cg.nlog
        self._hi_base = self._nl_eta + self._guard
        self._guard2 = self._guard + self._guard
        self._ordering_s = perf_counter() - start

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def run(
        self,
        seeds=None,
        reduced_graph: Optional[UncertainGraph] = None,
        order: Optional[Sequence] = None,
    ) -> EnumerationResult:
        """Execute the enumeration; same contract as the dict backend."""
        self._prepare(reduced_graph, order)
        # Imported lazily for the same import-cycle reason as the dict
        # backend (repro.sanitize / repro.obs reach back into
        # repro.core).
        from repro.obs.observer import build_observer
        from repro.sanitize.sanitizer import IdSanitizer, build_sanitizer

        core_san = build_sanitizer(
            self._graph, self._k, self._eta, self._config, "kernel"
        )
        obs = self.obs = build_observer(self._config, "kernel")
        if obs is not None:
            # The recursion passes raw int-id paths; translation to
            # labels happens only for sampled nodes.
            obs.set_labels(self._cg.labels)
            obs.on_gauge("vertices_input", self._graph.num_vertices)
            obs.on_gauge("vertices_search", self._cg.n)
        san = None
        if core_san is not None:
            core_san.on_reduced(list(self._cg.labels))
            core_san.on_context(
                dict(enumerate(self._color)),
                [
                    (u, w)
                    for u in range(self._cg.n)
                    for w in self._cg.nbr_ids[u]
                    if w > u
                ],
            )
            san = IdSanitizer(core_san, self._cg.labels)
        cg = self._cg
        n = cg.n
        index = cg.index
        seed_bits = None
        if seeds is not None:
            seed_bits = 0
            for v in seeds:
                i = index.get(v)
                if i is not None:
                    seed_bits |= 1 << i
        previous_limit = sys.getrecursionlimit()
        needed = n + 100
        if needed > previous_limit:
            sys.setrecursionlimit(needed)
        rec, flush = self._build_rec(san, obs)
        complete = seeds is None
        start = perf_counter()
        try:
            eta = self._eta
            sv = self._sv
            nlog = cg.nlog
            for v in range(n):
                if seed_bits is not None and not seed_bits >> v & 1:
                    continue
                c_bits = 0
                x_bits = 0
                nlog_v = nlog[v]
                for u, p in cg.prob[v].items():
                    if p >= eta:
                        sv[u] = nlog_v[u]
                        if u > v:
                            c_bits |= 1 << u
                        else:
                            x_bits |= 1 << u
                c_list = []
                b = c_bits
                while b:
                    low = b & -b
                    b ^= low
                    c_list.append(low.bit_length() - 1)
                rec([v], 0.0, c_bits, c_list, x_bits, [v], 1)
        except _StopKernel:
            complete = False
        finally:
            flush()
            if needed > previous_limit:
                sys.setrecursionlimit(previous_limit)
        recursion_s = perf_counter() - start
        start = perf_counter()
        if core_san is not None:
            core_san.on_finish(complete)
        sanitize_s = perf_counter() - start
        if obs is not None:
            obs.on_phase("reduction", self._reduction_s)
            obs.on_phase("ordering", self._ordering_s)
            obs.on_phase("recursion", recursion_s)
            obs.on_phase("sanitize", sanitize_s)
            obs.on_finish(self._result.stats)
        return self._result

    # ------------------------------------------------------------------
    # helpers mirroring the dict backend
    # ------------------------------------------------------------------
    def _select_pivot(self, keys: List[int]) -> int:
        """Pivot strategies over id arrays (same tie-breaks as dicts).

        The hybrid rule is a single fused scan: the dict backend's two
        ``max``-of-filtered passes resolve ties by first occurrence, so
        tracking the running lexicographic best over the same key order
        selects the identical vertex.
        """
        if len(keys) == 1:
            return keys[0]
        name = self._config.pivot
        if name == "first":
            return keys[0]
        if name == "degree":
            return max(keys, key=self._deg.__getitem__)
        if name == "color":
            return max(keys, key=self._colnum.__getitem__)
        # hybrid: prefer the max-(colnum, lb) candidate when its clique
        # lower bound already exceeds k, else fall back to max-(deg,
        # colnum) — same rule and tie-breaks as the dict strategy.
        v = max(keys, key=self._cn_lb.__getitem__)
        if self._lb[v] > self._k:
            return v
        return max(keys, key=self._deg_cn.__getitem__)

    def _exact_accept(self, w: int, r: List[int]) -> bool:
        """Replay the dict backend's float decision for candidate ``w``.

        Recomputes ``r_w`` (edge products in the order clique members
        were added) and ``q`` (the threaded clique probability) with
        the exact multiplication sequence of the dict backend, then
        applies its ``q_new * r_new >= eta`` test verbatim.
        """
        prob = self._cg.prob
        r_val = 1.0
        prob_w = prob[w]
        for t in r:
            r_val = r_val * prob_w[t]
        q = 1.0
        for idx in range(1, len(r)):
            row = prob[r[idx]]
            r_t = 1.0
            for jdx in range(idx):
                r_t = r_t * row[r[jdx]]
            q = q * r_t
        return q * r_val >= self._eta

    # ``GenerateSet`` lives inlined in the recursion (the call/return
    # cost of a method at 600k+ expansions is measurable);
    # ``_exact_accept`` above is its rare boundary-band escape hatch.

    # ------------------------------------------------------------------
    # the recursion (Algorithm 3, lines 6-21 — bitset edition)
    # ------------------------------------------------------------------
    def _build_rec(self, san=None, obs=None):
        """Compile the recursion into a closure; return ``(rec, flush)``.

        ``san`` is the (id-translating) sanitizer adapter or None and
        ``obs`` the :class:`~repro.obs.observer.Observer` or None; the
        hook sites below mirror the dict backend's exactly, which the
        REP007 (sanitizer) and REP008 (observer) lint rules enforce
        statically.  Observer hooks receive raw int-id paths — label
        translation happens inside the observer, only for sampled
        nodes.

        Everything the recursion reads but never rebinds — graph
        arrays, pivot tables, guard-band constants, the stats object —
        is captured in closure cells once per run.  Cell loads cost the
        same as locals, whereas ``self._x`` attribute lookups repeated
        across ~500k calls are a measurable slice of the runtime (the
        method version spent ~20 attribute loads per call on its
        prologue).  The recursive call itself also becomes a direct
        closure call with no attribute dispatch.
        """
        stats = self._result.stats
        k = self._k
        hybrid = self._hybrid
        kpivot = self._kpivot
        color_bound = self._color_bound
        improved = self._mpivot == "improved"
        basic = self._mpivot == "basic"
        lb = self._lb
        cn_lb = self._cn_lb
        cn_base = self._cn_base
        deg_cn = self._deg_cn
        nbr_bits = self._nbr_bits
        nlogr = self._nlogr
        hi_base = self._hi_base
        guard2 = self._guard2
        sv = self._sv
        color = self._color
        # Distinct-color counting uses a bitmask accumulator instead of
        # a set; pre-shifting each vertex's color bit makes the count
        # one subscript + two bit-ops per element.
        color_bit = [1 << cw for cw in color]
        select_pivot = self._select_pivot
        exact_accept = self._exact_accept
        bl = int.bit_length
        # Per-base copies of the byte table holding absolute ids
        # (``byte_ids[base >> 3][byte]``).  Ids above 256 fall outside
        # CPython's small-int cache, so computing ``base + off`` per
        # scanned candidate would allocate a fresh int every time;
        # interning the sums once turns the innermost loop into pure
        # tuple iteration.
        byte_ids = tuple(
            tuple(
                tuple(base + off for off in bits) for bits in _BYTE_BITS
            )
            for base in range(0, self._cg.n, 8)
        )
        # Emission, inlined: label translation + sink + limit check.
        label_of = self._cg.labels.__getitem__
        sink = self._sink
        limit = -1 if self._limit is None else self._limit
        # Search counters live in closure cells during the run and are
        # folded into ``SearchStats`` by ``flush`` (attribute updates on
        # the stats object are ~10x the cost of a cell store, and the
        # hot loop touches a counter several times per call).
        calls = expansions = outputs = 0
        mpivot_skips = kpivot_stops = size_prunes = max_depth = 0

        def flush() -> None:
            stats.calls += calls
            stats.expansions += expansions
            stats.outputs += outputs
            stats.mpivot_skips += mpivot_skips
            stats.kpivot_stops += kpivot_stops
            stats.size_prunes += size_prunes
            if max_depth > stats.max_depth:
                stats.max_depth = max_depth

        def rec(
            r: List[int],
            nlq: float,
            c_bits: int,
            c_list: List[int],
            x_bits: int,
            p: List[int],
            depth: int,
        ) -> List[int]:
            nonlocal calls, expansions, outputs, mpivot_skips
            nonlocal kpivot_stops, size_prunes, max_depth
            calls += 1
            if depth > max_depth:
                max_depth = depth
            if san is not None:
                san.on_node(depth)
            if obs is not None:
                obs.on_node(depth, r)
            if not c_bits:
                if not x_bits:
                    if len(r) >= k:
                        if san is not None:
                            san.on_emit(r, nlq, True)
                        if obs is not None:
                            obs.on_emit(depth, len(r))
                        outputs += 1
                        sink(frozenset(map(label_of, r)))
                        if outputs == limit:
                            raise _StopKernel
                    if hybrid:
                        size = len(r)
                        for w in r:
                            if lb[w] < size:
                                lb[w] = size
                                cn_lb[w] = cn_base[w] + size
                return p
            # Global lower-bound refresh, consumed only by the hybrid
            # pivot strategy (the dict path refreshes unconditionally,
            # but the values are dead under every other strategy).
            if hybrid:
                size = len(r) + 1
                for w in c_list:
                    if lb[w] < size:
                        lb[w] = size
                        cn_lb[w] = cn_base[w] + size
            rlen = len(r)
            need = k - rlen
            kpivot_pos = kpivot and need > 0
            if kpivot_pos:
                # K-pivot bound (Lemma 5/6).  The dict backend computes
                # the full bound and compares with ``k``; the
                # comparison is all that is ever used, so the length
                # pre-check decides outright when it can and the color
                # count stops at ``need`` distinct colors.
                if len(c_list) < need:
                    kpivot_stops += 1
                    if obs is not None:
                        obs.on_prune("kpivot", depth)
                    return p
                if color_bound:
                    seen = 0
                    cnt = 0
                    for w in c_list:
                        cb = color_bit[w]
                        if not seen & cb:
                            seen |= cb
                            cnt += 1
                            if cnt == need:
                                break
                    if cnt < need:
                        kpivot_stops += 1
                        if obs is not None:
                            obs.on_prune("kpivot", depth)
                        return p
            depth1 = depth + 1
            need1 = need - 1
            # Ids are rank-ordered and survivors are emitted in
            # ascending id order, so c_list is already the sorted work
            # list of the dict backend.
            if len(c_list) == 1:
                pivot = c_list[0]
            elif hybrid:
                # ``_select_pivot``'s hybrid rule, inlined here.
                v = max(c_list, key=cn_lb.__getitem__)
                if lb[v] > k:
                    pivot = v
                else:
                    pivot = max(c_list, key=deg_cn.__getitem__)
            else:
                pivot = select_pivot(c_list)
            # The caller restores ``sv`` from its survivor list after
            # this frame returns, so the work list must be a copy:
            # deleting expanded vertices from ``c_list`` itself would
            # silently drop restore entries.
            if c_list[0] == pivot:
                unexpanded = c_list[:]
            else:
                unexpanded = [pivot] + [v for v in c_list if v != pivot]
            periphery = ()
            expanded_any = False
            while True:
                if expanded_any and kpivot_pos:
                    if len(unexpanded) < need:
                        kpivot_stops += 1
                        if obs is not None:
                            obs.on_prune("kpivot", depth)
                        break
                    if color_bound:
                        seen = 0
                        cnt = 0
                        for w in unexpanded:
                            cb = color_bit[w]
                            if not seen & cb:
                                seen |= cb
                                cnt += 1
                                if cnt == need:
                                    break
                        if cnt < need:
                            kpivot_stops += 1
                            if obs is not None:
                                obs.on_prune("kpivot", depth)
                            break
                if not unexpanded:
                    break
                if not periphery:
                    u = unexpanded[0]
                    u_idx = 0
                else:
                    u_idx = -1
                    for idx, w in enumerate(unexpanded):
                        if w not in periphery:
                            u = w
                            u_idx = idx
                            break
                    if u_idx < 0:
                        if san is not None:
                            san.on_cover(depth, r, unexpanded, periphery)
                        mpivot_skips += len(unexpanded)
                        if obs is not None:
                            obs.on_prune("mpivot", depth, len(unexpanded))
                        break
                expanded_any = True
                nlq_new = nlq + sv[u]
                r.append(u)
                # --- GenerateSet, inlined (Algorithm 1): one AND per
                # set, then an additive threshold test per survivor.
                # ``s_new`` below ``lo`` is a certain accept, above
                # ``hi`` a certain reject; the narrow band in between
                # replays the dict backend's exact float decision.
                # Survivors restore the shared ``sv`` array by
                # subtracting the same term after the branch returns;
                # each add/sub pair can leave an ulp-sized residue, but
                # cumulative drift stays orders of magnitude inside the
                # guard band, where decisions defer to
                # ``_exact_accept`` anyway.
                nbr = nbr_bits[u]
                nlog_u = nlogr[u]
                hi = hi_base - nlq_new
                lo = hi - guard2
                c_new = c_bits & nbr
                c_next: List[int] = []
                keep = c_next.append
                if c_new:
                    # Skip straight to the first set byte: candidate
                    # ranks cluster high for late seeds, and scanning
                    # the leading zero bytes every call adds up.
                    bb = (bl(c_new & -c_new) - 1) >> 3
                    scan = c_new >> (bb << 3)
                    for byte in scan.to_bytes(
                        (bl(scan) + 7) >> 3, "little"
                    ):
                        if byte:
                            for w in byte_ids[bb][byte]:
                                s_new = sv[w] + nlog_u[w]
                                if s_new < lo or (
                                    s_new <= hi and exact_accept(w, r)
                                ):
                                    sv[w] = s_new
                                    keep(w)
                                else:
                                    c_new ^= 1 << w
                        bb += 1
                # --- end GenerateSet (the X projection is deferred
                # below: a size-pruned branch never reads X, so the
                # dict backend's unconditional projection is work the
                # kernel can skip with no observable difference)
                viable = need1 <= 0
                if not viable and len(c_next) >= need1:
                    if color_bound:
                        seen = 0
                        cnt = 0
                        for w in c_next:
                            cb = color_bit[w]
                            if not seen & cb:
                                seen |= cb
                                cnt += 1
                                if cnt == need1:
                                    break
                        viable = cnt >= need1
                    else:
                        viable = True
                if viable:
                    x_new = x_bits & nbr
                    if x_new:
                        x_list: List[int] = []
                        keep_x = x_list.append
                        bb = (bl(x_new & -x_new) - 1) >> 3
                        scan = x_new >> (bb << 3)
                        for byte in scan.to_bytes(
                            (bl(scan) + 7) >> 3, "little"
                        ):
                            if byte:
                                for w in byte_ids[bb][byte]:
                                    s_new = sv[w] + nlog_u[w]
                                    if s_new < lo or (
                                        s_new <= hi
                                        and exact_accept(w, r)
                                    ):
                                        sv[w] = s_new
                                        keep_x(w)
                                    else:
                                        x_new ^= 1 << w
                            bb += 1
                    else:
                        x_list = ()
                    expansions += 1
                    if obs is not None:
                        obs.on_expand(depth)
                    if c_new:
                        branch_best = rec(
                            r, nlq_new, c_new, c_next, x_new,
                            list(r), depth1,
                        )
                        blen = len(branch_best)
                    else:
                        # Inlined leaf: a child with no candidates only
                        # counts itself, possibly emits, and returns
                        # its ``p`` argument unchanged — so the copy of
                        # ``r`` is never materialized here.
                        calls += 1
                        if depth1 > max_depth:
                            max_depth = depth1
                        if san is not None:
                            san.on_node(depth1)
                        if obs is not None:
                            obs.on_node(depth1, r)
                        if not x_new:
                            if rlen >= k - 1:
                                if san is not None:
                                    san.on_emit(r, nlq_new, True)
                                if obs is not None:
                                    obs.on_emit(depth1, rlen + 1)
                                outputs += 1
                                sink(frozenset(map(label_of, r)))
                                if outputs == limit:
                                    raise _StopKernel
                            if hybrid:
                                size = rlen + 1
                                for w in r:
                                    if lb[w] < size:
                                        lb[w] = size
                                        cn_lb[w] = cn_base[w] + size
                        branch_best = None
                        blen = rlen + 1
                else:
                    size_prunes += 1
                    if obs is not None:
                        obs.on_prune("size", depth)
                    x_list = ()
                    branch_best = None
                    blen = rlen + 1
                r.pop()
                for w in c_next:
                    sv[w] -= nlog_u[w]
                for w in x_list:
                    sv[w] -= nlog_u[w]
                # ``branch_best is None`` stands for the un-materialized
                # copy of ``r + [u]`` (length ``blen``); build it only
                # when it actually replaces the periphery or ``p``.
                if improved or (basic and not periphery):
                    if len(periphery) < blen:
                        if branch_best is None:
                            periphery = set(r)
                            periphery.add(u)
                        else:
                            periphery = set(branch_best)
                if len(p) < blen:
                    p = branch_best if branch_best is not None else r + [u]
                del unexpanded[u_idx]
                bit = 1 << u
                c_bits &= ~bit
                x_bits |= bit
            return p

        return rec, flush
