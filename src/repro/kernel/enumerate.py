"""Bitset/integer fast path of the pivot enumerator.

This module is the **kernel backend** of the shared search engine
(:mod:`repro.engine`): the recursion control flow runs once, in
:func:`repro.engine.driver.build_search`, and this module supplies the
state algebra over the :class:`~repro.kernel.compact.CompactGraph`
representation:

* ``C`` and ``X`` are **bitsets** (Python big-ints).  The
  ``GenerateSet`` kernel of Algorithm 1 becomes one word-parallel
  ``bits & nbr_bits[u]`` followed by a per-survivor threshold test —
  non-neighbors cost one AND for the whole set instead of one hash
  probe each.
* Per-candidate clique probabilities are tracked **additively** in the
  log domain: the shared array ``sv[w]`` holds
  ``-log Pr(R ∪ {w})/Pr(R)`` (the dict backend's ``r`` value) and the
  scalar ``nlq`` holds ``-log Pr(R)``, so the η-threshold test is one
  addition and one comparison.
* Vertices are relabeled so that **id order equals enumeration rank**:
  iterating a candidate bitset from the lowest bit up yields the
  rank-sorted work list with no sorting at all.

**Exactness guard.** The dict backend decides ``q_new * r_new >= eta``
with IEEE-754 products; log-domain sums round differently.  Whenever
the additive test lands within a conservative error band of the
threshold (``REL_GUARD`` — orders of magnitude wider than the maximal
accumulated float error), the kernel replays the dict backend's exact
multiplication sequence for that candidate and uses *its* verdict.
Outside the band the two tests provably agree, so the kernel emits
byte-identical clique sets and identical ``SearchStats`` counters.

Only float (or int) probabilities and thresholds are supported;
:class:`~fractions.Fraction` graphs raise
:class:`~repro.exceptions.KernelBackendError` at compile time and the
caller falls back to the dict backend.
"""

from __future__ import annotations

from math import log
from types import SimpleNamespace
from typing import Callable, List, Optional, Sequence

from repro.exceptions import KernelBackendError
from repro.core.stats import EnumerationResult
from repro.engine.protocol import SearchOps, StateOps, register_backend
from repro.kernel.compact import CompactGraph, bit_count
from repro.kernel.reduction import (
    greedy_coloring_ids,
    topk_core_ids,
    topk_triangle_edge_ids,
    vertex_ordering_ids,
)
from repro.uncertain.graph import UncertainGraph

#: Relative half-width of the boundary band inside which the additive
#: log-domain test defers to an exact float replay.  Accumulated
#: floating-point error across both domains is bounded well below
#: ``1e-12 * (1 + |total|)`` for any feasible recursion depth; the
#: guard is ~1000x wider.
REL_GUARD = 1e-9

#: Ascending bit offsets of every byte value.  The hot loops iterate a
#: candidate bitset as ``bits.to_bytes(..., "little")`` plus one table
#: lookup per non-zero byte: the byte scan runs at C speed, zero bytes
#: cost one truth test, and no per-bit big-int arithmetic
#: (``b & -b`` / ``bit_length``) is needed at all.
_BYTE_BITS = tuple(
    tuple(i for i in range(8) if v >> i & 1) for v in range(256)
)


def supports(graph: UncertainGraph, eta) -> bool:
    """True when ``graph``/``eta`` can run on the kernel backend."""
    if not isinstance(eta, (float, int)):
        return False
    return all(
        isinstance(p, (float, int)) for _u, _v, p in graph.edges()
    )


def effective_backend(graph: UncertainGraph, eta, config) -> str:
    """The backend ``PivotEnumerator.run`` would actually execute.

    ``config.backend == "kernel"`` silently falls back to the dict
    backend when :func:`supports` refuses the inputs, so any identity
    derived from the *configured* backend would split cache keys that
    produce byte-identical runs (and merge keys that do not).  The run
    store keys on this resolved value instead.
    """
    if config.backend == "kernel" and supports(graph, eta):
        return "kernel"
    return "dict"


class KernelStateOps(StateOps):
    """Bitset/log-domain state algebra for the search engine.

    The candidate handle is ``None`` when empty, else a mutable
    two-slot list ``[c_bits, c_list]`` (bitset plus its ascending-id
    survivor list — the invariant ``c_bits == 0  <=>  c_list == []``
    makes ``None`` the only falsy form).  The exclusion handle is the
    bare bitset.  ``expand`` mutates the shared ``sv`` array for every
    survivor; ``retract`` restores it from the survivor lists.
    """

    name = "kernel"
    log_domain = True
    unit = 0.0

    def __init__(self, graph: UncertainGraph, k: int, eta, config):
        if not isinstance(eta, (float, int)):
            raise KernelBackendError(
                f"kernel backend requires a float eta, got {type(eta).__name__}"
            )
        self.graph = graph
        self._k = k
        self._eta = float(eta)
        self._nl_eta = -log(self._eta) if self._eta < 1.0 else 0.0
        # Constant half-width of the exactness guard band.  Near the
        # decision boundary ``|total| ~ nl_eta``, so a band scaled to
        # ``nl_eta`` dominates the accumulated float error (~1e-12
        # relative) by three orders of magnitude while staying narrow
        # enough that exact replays are rare.
        self._guard = REL_GUARD * (2.0 + 2.0 * self._nl_eta)
        self._config = config
        self._hybrid = config.pivot == "hybrid"
        # Populated by the prepare_* prelude:
        self._cg: CompactGraph = CompactGraph([])
        self._cg_red: Optional[CompactGraph] = None
        self._sv: List[float] = []
        self._deg: List[int] = []
        self._color: List[int] = []
        self._colnum: List[int] = []
        self._lb: List[int] = []
        #: Cached :meth:`fast_ops` namespace (rebuilt per prepare).
        self._fast: Optional[SimpleNamespace] = None

    # -- prelude: reduction, ordering, coloring — all on int ids -------
    def _reduce_ids(self, cg: CompactGraph) -> CompactGraph:
        """Kernel counterpart of :func:`repro.core.pmuc.reduce_graph`."""
        mode = self._config.reduction
        k = self._k
        if mode == "off" or k < 2:
            return cg
        reduced = cg.induced(topk_core_ids(cg, k - 1, self._eta))
        if mode == "triangle" and k >= 3:
            reduced = reduced.edge_induced(
                topk_triangle_edge_ids(reduced, k - 2, self._eta)
            )
        return reduced

    def prepare_reduction(self, reduced_graph) -> None:
        if reduced_graph is not None:
            self._cg_red = CompactGraph.from_uncertain(reduced_graph)
        else:
            self._cg_red = self._reduce_ids(
                CompactGraph.from_uncertain(self.graph)
            )

    def prepare_ordering(self, order_labels) -> None:
        cg_red = self._cg_red
        if order_labels is not None:
            order = [cg_red.index[v] for v in order_labels]
        else:
            order = vertex_ordering_ids(
                cg_red, self._config.ordering, self._eta
            )
        # Pivot context (degree / color / color number) is computed in
        # the reduced graph's insertion-order ids — the same processing
        # order as the dict path — then permuted into rank ids.
        colors_red = greedy_coloring_ids(cg_red)
        self._cg = cg_red.relabeled(order)
        self._deg = [cg_red.degree(old) for old in order]
        self._color = [colors_red[old] for old in order]
        self._colnum = [
            len({colors_red[u] for u in cg_red.nbr_ids[old]})
            for old in order
        ]
        n = self._cg.n
        self._lb = [1] * n
        self._sv = [0.0] * n
        # Fused integer sort keys for the hybrid pivot rule: comparing
        # ``colnum * (n + 1) + lb`` (resp. ``deg * (n + 1) + colnum``)
        # is the lexicographic comparison of the pairs because both
        # minor terms are bounded by ``n < n + 1``.  ``max`` over a
        # list-indexing key runs at C speed and keeps the dict
        # backend's first-max-wins tie-breaking.
        m = n + 1
        self._cn_base = [c * m for c in self._colnum]
        self._cn_lb = [base + 1 for base in self._cn_base]
        self._deg_cn = [
            d * m + c for d, c in zip(self._deg, self._colnum)
        ]
        # Dense ``-log p`` rows: ``nlogr[u][w]`` is read millions of
        # times per run, and list indexing beats dict probing.  Only
        # neighbor slots are ever read (survivors come out of
        # ``bits & nbr_bits[u]``), so the 0.0 filler is never seen.
        # O(n^2) pointers is fine at benchmark scale; huge graphs keep
        # the sparse per-vertex dicts.
        if n <= 2048:
            nbr_ids = self._cg.nbr_ids
            nbr_nlogs = self._cg.nbr_nlogs
            rows: List[List[float]] = []
            for u in range(n):
                row = [0.0] * n
                for j, nl in zip(nbr_ids[u], nbr_nlogs[u]):
                    row[j] = nl
                rows.append(row)
            self._nlogr = rows
        else:
            self._nlogr = self._cg.nlog
        self._hi_base = self._nl_eta + self._guard
        self._guard2 = self._guard + self._guard
        self._fast = None

    def search_size(self) -> int:
        return self._cg.n

    def context(self):
        # The coloring is checked in rank-id space: proper is proper
        # under any relabeling, and the recursion's covers arrive
        # id-translated through the IdSanitizer anyway.
        cg = self._cg
        return (
            list(cg.labels),
            dict(enumerate(self._color)),
            [
                (u, w)
                for u in range(cg.n)
                for w in cg.nbr_ids[u]
                if w > u
            ],
        )

    def bind_observer(self, obs) -> None:
        if obs is not None:
            # The recursion passes raw int-id paths; translation to
            # labels happens only for sampled nodes.
            obs.set_labels(self._cg.labels)

    def bind_sanitizer(self, san):
        from repro.sanitize.sanitizer import IdSanitizer

        return IdSanitizer(san, self._cg.labels)

    def roots(self, seeds):
        n = self._cg.n
        if seeds is None:
            return range(n)
        index = self._cg.index
        ids = set()
        for v in seeds:
            i = index.get(v)
            if i is not None:
                ids.add(i)
        return sorted(ids)

    def root_state(self, v):
        cg = self._cg
        eta = self._eta
        sv = self._sv
        nlog_v = cg.nlog[v]
        c_bits = 0
        x_bits = 0
        for u, p in cg.prob[v].items():
            if p >= eta:
                sv[u] = nlog_v[u]
                if u > v:
                    c_bits |= 1 << u
                else:
                    x_bits |= 1 << u
        c_list: List[int] = []
        b = c_bits
        while b:
            low = b & -b
            b ^= low
            c_list.append(low.bit_length() - 1)
        return ([c_bits, c_list] if c_bits else None), x_bits

    # -- hot path ------------------------------------------------------
    def _exact_accept(self, w: int, r: List[int]) -> bool:
        """Replay the dict backend's float decision for candidate ``w``.

        Recomputes ``r_w`` (edge products in the order clique members
        were added) and ``q`` (the threaded clique probability) with
        the exact multiplication sequence of the dict backend, then
        applies its ``q_new * r_new >= eta`` test verbatim.
        """
        prob = self._cg.prob
        r_val = 1.0
        prob_w = prob[w]
        for t in r:
            r_val = r_val * prob_w[t]
        q = 1.0
        for idx in range(1, len(r)):
            row = prob[r[idx]]
            r_t = 1.0
            for jdx in range(idx):
                r_t = r_t * row[r[jdx]]
            q = q * r_t
        return q * r_val >= self._eta

    def _exact_x_member(self, w: int, r: List[int]) -> bool:
        """Replay the dict backend's per-level float verdicts for ``w``.

        The deferred exclusion test (lazy ``X``, see the engine's
        bitset variant) only consults ``X`` at leaves; the dict
        backend, by contrast, filters ``X`` at every level.  Exact
        values are monotone nonincreasing along the path, so outside
        the guard band the leaf verdict decides every level at once —
        but *inside* the band each level's IEEE-754 product sequence
        must be replayed individually: ``w`` is still an exclusion
        witness iff ``q_m * r_m >= eta`` held at every prefix
        ``r[:m]``.  The groupings below are exactly the dict
        backend's (incremental products in member-addition order).
        """
        prob = self._cg.prob
        eta = self._eta
        prob_w = prob[w]
        r_val = 1.0 * prob_w[r[0]]
        q = 1.0
        if q * r_val < eta:
            return False
        for idx in range(1, len(r)):
            row = prob[r[idx]]
            r_t = 1.0
            for jdx in range(idx):
                r_t = r_t * row[r[jdx]]
            q = q * r_t
            r_val = r_val * prob_w[r[idx]]
            if q * r_val < eta:
                return False
        return True

    def fast_ops(self) -> SimpleNamespace:
        """Raw bitset hot state for the engine's specialized variant.

        Everything the bitset recursion template needs, as one flat
        namespace the specializer binds to locals: the shared ``sv``
        array, bitset adjacency, dense ``-log`` rows, the fused pivot
        keys, per-color bit masks for the Lemma-6 popcount bound,
        per-vertex bit singletons, the guard-band constants, and the
        exact-replay deciders.  Cached until the next ``prepare_*``
        (which rebuilds the underlying arrays).
        """
        if self._fast is not None:
            return self._fast
        lb = self._lb
        deg = self._deg
        colnum = self._colnum
        cn_lb = self._cn_lb
        deg_cn = self._deg_cn
        k = self._k
        label_of = self._cg.labels.__getitem__
        pivot_name = self._config.pivot

        if pivot_name == "hybrid":
            def select_pivot(keys):
                v = max(keys, key=cn_lb.__getitem__)
                if lb[v] > k:
                    return v
                return max(keys, key=deg_cn.__getitem__)
        elif pivot_name == "degree":
            def select_pivot(keys):
                return max(keys, key=deg.__getitem__)
        elif pivot_name == "color":
            def select_pivot(keys):
                return max(keys, key=colnum.__getitem__)
        else:  # "first"
            def select_pivot(keys):
                return keys[0]

        def decode(r):
            return frozenset(map(label_of, r))

        # Past ~512 vertices a singleton-mask membership test costs
        # many 30-bit words, so ask the engine for the wide-scan
        # GenerateSet variant (set-bit extraction) instead of the
        # parent-list walk that wins on narrow graphs.
        self._fast = SimpleNamespace(
            wide_scan=self._cg.n > 512,
            sv=self._sv,
            nbr_bits=self._cg.nbr_bits,
            nlogr=self._nlogr,
            lb=lb,
            cn_lb=cn_lb,
            cn_base=self._cn_base,
            deg_cn=deg_cn,
            color_bit=[1 << cw for cw in self._color],
            bit_at=[1 << i for i in range(self._cg.n)],
            hi_base=self._hi_base,
            guard2=self._guard2,
            exact_accept=self._exact_accept,
            exact_x_member=self._exact_x_member,
            popcount=bit_count,
            select_pivot=select_pivot,
            decode=decode,
            # The bitset template inlines ``decode`` at its emit sites
            # (one ``map`` over the label table, no closure hop), so
            # the raw label getter is published alongside it.
            label_of=label_of,
        )
        return self._fast

    def search_ops(self) -> SearchOps:
        """Compile the hot-path closures over this run's arrays.

        Everything the ops read — graph arrays, pivot tables,
        guard-band constants — is captured in closure cells once per
        run.  Cell loads cost the same as locals, whereas ``self._x``
        attribute lookups repeated across ~10⁶ calls are a measurable
        slice of the runtime.
        """
        k = self._k
        hybrid = self._hybrid
        color_bound = self._config.kpivot == "color"
        pivot_name = self._config.pivot
        lb = self._lb
        cn_lb = self._cn_lb
        cn_base = self._cn_base
        deg_cn = self._deg_cn
        deg = self._deg
        colnum = self._colnum
        nbr_bits = self._cg.nbr_bits
        nlogr = self._nlogr
        hi_base = self._hi_base
        guard2 = self._guard2
        sv = self._sv
        exact_accept = self._exact_accept
        bl = int.bit_length
        # Distinct-color counting uses a bitmask accumulator instead of
        # a set; pre-shifting each vertex's color bit makes the count
        # one subscript + two bit-ops per element.
        color_bit = [1 << cw for cw in self._color]
        # Per-base copies of the byte table holding absolute ids
        # (``byte_ids[base >> 3][byte]``).  Ids above 256 fall outside
        # CPython's small-int cache, so computing ``base + off`` per
        # scanned candidate would allocate a fresh int every time;
        # interning the sums once turns the innermost loop into pure
        # tuple iteration.
        byte_ids = tuple(
            tuple(
                tuple(base + off for off in bits) for bits in _BYTE_BITS
            )
            for base in range(0, self._cg.n, 8)
        )
        label_of = self._cg.labels.__getitem__

        if hybrid:
            def select_pivot(keys):
                # The dict strategy's two ``max``-of-filtered passes
                # resolve ties by first occurrence; ``max`` over the
                # fused keys selects the identical vertex.
                v = max(keys, key=cn_lb.__getitem__)
                if lb[v] > k:
                    return v
                return max(keys, key=deg_cn.__getitem__)
        elif pivot_name == "degree":
            def select_pivot(keys):
                return max(keys, key=deg.__getitem__)
        elif pivot_name == "color":
            def select_pivot(keys):
                return max(keys, key=colnum.__getitem__)
        else:  # "first"
            def select_pivot(keys):
                return keys[0]

        if hybrid:
            def lb_refresh(vertices, size):
                for w in vertices:
                    if lb[w] < size:
                        lb[w] = size
                        cn_lb[w] = cn_base[w] + size
        else:
            # The lower bound is consumed only by the hybrid pivot
            # strategy (the dict path refreshes unconditionally, but
            # the values are dead under every other strategy).
            def lb_refresh(vertices, size):
                return None

        def open_node(c, size):
            # Ids are rank-ordered and ``expand`` emits survivors in
            # ascending id order, so the survivor list is already the
            # sorted work list of the dict backend.
            keys = c[1]
            lb_refresh(keys, size)
            if len(keys) == 1:
                return keys, keys[0]
            return keys, select_pivot(keys)

        def color_reaches(vertices, need):
            seen = 0
            cnt = 0
            for w in vertices:
                cb = color_bit[w]
                if not seen & cb:
                    seen |= cb
                    cnt += 1
                    if cnt == need:
                        return True
            return False

        def expand(u, c, x, nlq, r, need1):
            # --- GenerateSet (Algorithm 1): one AND per set, then an
            # additive threshold test per survivor.  ``s_new`` below
            # ``lo`` is a certain accept, above ``hi`` a certain
            # reject; the narrow band in between replays the dict
            # backend's exact float decision.  Survivors restore the
            # shared ``sv`` array by subtracting the same term in
            # ``retract``; each add/sub pair can leave an ulp-sized
            # residue, but cumulative drift stays orders of magnitude
            # inside the guard band, where decisions defer to
            # ``_exact_accept`` anyway.
            nlq_new = nlq + sv[u]
            nbr = nbr_bits[u]
            nlog_u = nlogr[u]
            hi = hi_base - nlq_new
            lo = hi - guard2
            c_new = c[0] & nbr
            c_next: List[int] = []
            keep = c_next.append
            if c_new:
                # Skip straight to the first set byte: candidate ranks
                # cluster high for late seeds, and scanning the
                # leading zero bytes every call adds up.
                bb = (bl(c_new & -c_new) - 1) >> 3
                scan = c_new >> (bb << 3)
                for byte in scan.to_bytes((bl(scan) + 7) >> 3, "little"):
                    if byte:
                        for w in byte_ids[bb][byte]:
                            s_new = sv[w] + nlog_u[w]
                            if s_new < lo or (
                                s_new <= hi and exact_accept(w, r)
                            ):
                                sv[w] = s_new
                                keep(w)
                            else:
                                c_new ^= 1 << w
                    bb += 1
            viable = need1 <= 0
            if not viable and len(c_next) >= need1:
                if color_bound:
                    seen = 0
                    cnt = 0
                    for w in c_next:
                        cb = color_bit[w]
                        if not seen & cb:
                            seen |= cb
                            cnt += 1
                            if cnt == need1:
                                break
                    viable = cnt >= need1
                else:
                    viable = True
            if not viable:
                # A size-pruned branch never reads X; hand retract an
                # empty restore token.
                return nlq_new, (
                    [c_new, c_next] if c_new else None
                ), 0, (), False
            x_new = x & nbr
            if x_new:
                x_list: List[int] = []
                keep_x = x_list.append
                bb = (bl(x_new & -x_new) - 1) >> 3
                scan = x_new >> (bb << 3)
                for byte in scan.to_bytes((bl(scan) + 7) >> 3, "little"):
                    if byte:
                        for w in byte_ids[bb][byte]:
                            s_new = sv[w] + nlog_u[w]
                            if s_new < lo or (
                                s_new <= hi and exact_accept(w, r)
                            ):
                                sv[w] = s_new
                                keep_x(w)
                            else:
                                x_new ^= 1 << w
                    bb += 1
            else:
                x_list = ()
            return nlq_new, (
                [c_new, c_next] if c_new else None
            ), x_new, x_list, True

        def retract(u, c, x, c_child, x_token):
            nlog_u = nlogr[u]
            if c_child is not None:
                for w in c_child[1]:
                    sv[w] -= nlog_u[w]
            if x_token:
                for w in x_token:
                    sv[w] -= nlog_u[w]
            c[0] &= ~(1 << u)
            return c, x | 1 << u

        def decode(r):
            return frozenset(map(label_of, r))

        return SearchOps(
            open_node=open_node,
            lb_refresh=lb_refresh,
            color_reaches=color_reaches,
            expand=expand,
            retract=retract,
            decode=decode,
        )


register_backend("kernel", KernelStateOps)


class KernelEnumerator:
    """One kernel-backend enumeration run (facade over the engine).

    Shares the recursion with the dict backend — both run
    :func:`repro.engine.driver.build_search` — so clique sets,
    ``SearchStats`` counters, and hook streams are identical by
    construction; see ``tests/test_kernel_parity.py`` and
    ``tests/test_engine_differential.py``.
    """

    def __init__(
        self,
        graph: UncertainGraph,
        k: int,
        eta,
        config,
        result: EnumerationResult,
        sink: Callable[[frozenset], None],
        limit: Optional[int],
    ):
        # Raises KernelBackendError for non-float eta.
        self._ops = KernelStateOps(graph, k, eta, config)
        self._k = k
        self._eta = float(eta)
        self._config = config
        self._result = result
        self._sink = sink
        self._limit = limit
        #: The run's :class:`~repro.obs.observer.Observer` (or None);
        #: populated by :meth:`run`, mirrored onto the delegating
        #: ``PivotEnumerator`` afterwards.
        self.obs = None
        #: :func:`~repro.engine.driver.variant_id` of the compiled
        #: recursion variant :meth:`run` executed; mirrored like
        #: ``obs``.
        self.variant_used: Optional[str] = None

    def run(
        self,
        seeds=None,
        reduced_graph: Optional[UncertainGraph] = None,
        order: Optional[Sequence] = None,
    ) -> EnumerationResult:
        """Execute the enumeration; same contract as the dict backend."""
        from repro.engine.driver import SearchEngine

        engine = SearchEngine(
            self._ops,
            self._k,
            self._eta,
            self._config,
            self._result,
            self._sink,
            self._limit,
        )
        try:
            return engine.run(
                seeds, reduced_graph=reduced_graph, order=order
            )
        finally:
            self.obs = engine.obs
            self.variant_used = engine.variant
