"""Bitset/integer kernel layer for the enumeration hot path.

Re-encodes float-probability uncertain graphs over dense int ids with
big-int neighbor bitsets and parallel probability / ``-log p`` arrays
(:class:`CompactGraph`), provides int-id counterparts of the reduction,
ordering and coloring pipeline (:mod:`repro.kernel.reduction`), and a
fast re-implementation of the pivot recursion
(:class:`KernelEnumerator`) selected via
``PivotConfig(backend="kernel")``.  Clique sets and search statistics
are identical to the dict backend by construction and by the parity
tests in ``tests/test_kernel_parity.py``.
"""

from repro.kernel.compact import CompactGraph, bit_indices
from repro.kernel.enumerate import KernelEnumerator, supports
from repro.kernel.reduction import (
    degeneracy_ordering_ids,
    greedy_coloring_ids,
    topk_core_ids,
    topk_core_ordering_ids,
    topk_triangle_edge_ids,
    vertex_ordering_ids,
)

__all__ = [
    "CompactGraph",
    "KernelEnumerator",
    "bit_indices",
    "supports",
    "degeneracy_ordering_ids",
    "greedy_coloring_ids",
    "topk_core_ids",
    "topk_core_ordering_ids",
    "topk_triangle_edge_ids",
    "vertex_ordering_ids",
]
