"""Dense integer-id graph representation for the bitset kernel.

The dict-of-dicts :class:`~repro.uncertain.graph.UncertainGraph` is the
right structure for construction and for exact (Fraction) runs, but the
enumeration hot path only ever intersects neighborhoods and multiplies
edge probabilities.  :class:`CompactGraph` re-encodes a float-probability
graph for exactly that workload:

* vertices are remapped to dense ids ``0 .. n-1`` (insertion order of
  the source graph, so downstream tie-breaking matches the dict path);
* each neighborhood is a Python big-int **bitset** — bit ``u`` of
  ``nbr_bits[v]`` is set iff ``(v, u)`` is an edge — so restricting a
  candidate set to ``N(v)`` is one word-parallel ``&``;
* edge probabilities live in parallel arrays (``nbr_ids[v]`` /
  ``nbr_probs[v]`` / ``nbr_nlogs[v]``) plus per-vertex ``{id: p}`` and
  ``{id: -log p}`` dictionaries for O(1) random access.  The ``-log p``
  table turns clique-probability thresholds into additive comparisons
  (see :mod:`repro.kernel.enumerate` for the exactness guard).

Only ``float``/``int`` probabilities are supported: exact
:class:`~fractions.Fraction` graphs raise :class:`KernelBackendError`
and the enumerator falls back to the dict backend.
"""

from __future__ import annotations

from math import log
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import KernelBackendError
from repro.uncertain.graph import UncertainGraph, Vertex


try:
    #: Population count for big-int bitsets.  ``int.bit_count`` is a C
    #: intrinsic from Python 3.10 on; the unbound-method call form
    #: (``bit_count(bits)``) lets hot loops bind it as a local.
    bit_count = int.bit_count
except AttributeError:  # pragma: no cover - Python 3.9 fallback
    def bit_count(bits: int) -> int:
        """Portable popcount: number of set bits in ``bits``."""
        # repro-lint: ok REP011 bin() here IS the popcount (3.9 fallback)
        return bin(bits).count("1")


def bit_indices(bits: int) -> Iterator[int]:
    """Yield the set-bit positions of ``bits`` in ascending order.

    Convenience for cold paths; the enumeration hot loops inline the
    same ``b & -b`` extraction to avoid generator overhead.
    """
    while bits:
        low = bits & -bits
        yield low.bit_length() - 1
        bits ^= low


class CompactGraph:
    """An uncertain graph over dense int ids with bitset neighborhoods.

    Attributes
    ----------
    n:
        Number of vertices.
    labels:
        ``labels[i]`` is the original vertex of id ``i`` (insertion
        order of the source graph).
    index:
        Inverse mapping ``{label: id}``.
    nbr_bits:
        Per-vertex neighbor bitsets (Python big-ints).
    nbr_ids / nbr_probs / nbr_nlogs:
        Parallel adjacency arrays in source-graph neighbor order:
        neighbor id, edge probability, and ``-log p``.
    prob / nlog:
        Per-vertex ``{neighbor_id: p}`` and ``{neighbor_id: -log p}``
        for random access inside ``GenerateSet``.
    """

    __slots__ = (
        "n",
        "labels",
        "index",
        "nbr_bits",
        "nbr_ids",
        "nbr_probs",
        "nbr_nlogs",
        "prob",
        "nlog",
    )

    def __init__(self, labels: Sequence[Vertex]):
        self.n = len(labels)
        self.labels: List[Vertex] = list(labels)
        self.index: Dict[Vertex, int] = {v: i for i, v in enumerate(labels)}
        if len(self.index) != self.n:
            raise KernelBackendError("duplicate vertex labels")
        self.nbr_bits: List[int] = [0] * self.n
        self.nbr_ids: List[List[int]] = [[] for _ in range(self.n)]
        self.nbr_probs: List[List[float]] = [[] for _ in range(self.n)]
        self.nbr_nlogs: List[List[float]] = [[] for _ in range(self.n)]
        self.prob: List[Dict[int, float]] = [{} for _ in range(self.n)]
        self.nlog: List[Dict[int, float]] = [{} for _ in range(self.n)]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_uncertain(cls, graph: UncertainGraph) -> "CompactGraph":
        """Compile ``graph`` into the kernel representation.

        Raises
        ------
        KernelBackendError
            If any edge probability is not a ``float`` (or ``int``).
        """
        cg = cls(graph.vertices())
        index = cg.index
        for v in graph:
            i = index[v]
            nbrs = graph.neighbors(v)
            probs: List[float] = []
            for p in nbrs.values():
                if not isinstance(p, (float, int)):
                    raise KernelBackendError(
                        f"kernel backend requires float probabilities, "
                        f"an edge at {v!r} has {type(p).__name__}"
                    )
                probs.append(float(p))
            cg._set_row(i, [index[u] for u in nbrs], probs)
        return cg

    def _set_row(
        self,
        i: int,
        ids: List[int],
        probs: List[float],
        nlogs: Optional[List[float]] = None,
    ) -> None:
        """Install vertex ``i``'s full adjacency row in one shot."""
        bits = 0
        for j in ids:
            bits |= 1 << j
        if nlogs is None:
            nlogs = [(-log(p) if p < 1.0 else 0.0) for p in probs]
        self.nbr_bits[i] = bits
        self.nbr_ids[i] = ids
        self.nbr_probs[i] = probs
        self.nbr_nlogs[i] = nlogs
        self.prob[i] = dict(zip(ids, probs))
        self.nlog[i] = dict(zip(ids, nlogs))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def degree(self, i: int) -> int:
        """Number of neighbors of id ``i``."""
        return len(self.nbr_ids[i])

    @property
    def num_edges(self) -> int:
        """Number of (undirected) edges."""
        return sum(len(ids) for ids in self.nbr_ids) // 2

    def edges_in_insertion_order(self) -> Iterator[Tuple[int, int, float]]:
        """Yield each edge once, mirroring ``UncertainGraph.edges()``.

        The scan order (outer vertex by id, neighbors in source order,
        first occurrence wins) reproduces the dict representation's edge
        iteration exactly, which downstream code relies on for
        deterministic, backend-identical tie-breaking.  Ids are
        insertion ranks, so an edge's first occurrence is at its
        smaller endpoint: no seen-set is needed.
        """
        for i in range(self.n):
            row_ids = self.nbr_ids[i]
            row_probs = self.nbr_probs[i]
            for j, p in zip(row_ids, row_probs):
                if j > i:
                    yield (i, j, p)

    def normalize_pair(self, i: int, j: int) -> Tuple[int, int]:
        """Canonical id pair ordered like ``normalize_edge`` on labels.

        Ids follow insertion order, not label order, so the canonical
        form must compare the original labels (with the same ``repr``
        fallback) to stay aligned with the dict path.
        """
        u, v = self.labels[i], self.labels[j]
        try:
            return (i, j) if u <= v else (j, i)  # type: ignore[operator]
        except TypeError:
            return (i, j) if repr(u) <= repr(v) else (j, i)

    def backbone_adjacency(self) -> List[List[int]]:
        """Adjacency lists ordered like the deterministic backbone.

        ``UncertainGraph.to_deterministic`` inserts edges in global
        ``edges()`` scan order, so a vertex's backbone neighbor order is
        the order its edges appear in that scan — not the order of its
        own adjacency row.  The degeneracy peel is sensitive to this
        order, so the kernel mirrors it explicitly.
        """
        adj: List[List[int]] = [[] for _ in range(self.n)]
        for i, j, _p in self.edges_in_insertion_order():
            adj[i].append(j)
            adj[j].append(i)
        return adj

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def induced(self, ids: Iterable[int]) -> "CompactGraph":
        """Induced subgraph on ``ids``; new ids follow ascending old id.

        Ascending old id equals source insertion order, matching the
        (deterministic) vertex order of ``UncertainGraph.subgraph``.
        """
        keep = sorted(set(ids))
        remap = {old: new for new, old in enumerate(keep)}
        sub = CompactGraph([self.labels[i] for i in keep])
        for i, old in enumerate(keep):
            row_ids: List[int] = []
            row_probs: List[float] = []
            row_nlogs: List[float] = []
            for j_old, p, nl in zip(
                self.nbr_ids[old], self.nbr_probs[old], self.nbr_nlogs[old]
            ):
                j = remap.get(j_old)
                if j is not None:
                    row_ids.append(j)
                    row_probs.append(p)
                    row_nlogs.append(nl)
            sub._set_row(i, row_ids, row_probs, row_nlogs)
        return sub

    def edge_induced(
        self, edges: Iterable[Tuple[int, int]]
    ) -> "CompactGraph":
        """Subgraph induced by an edge list; vertex order of first use.

        Mirrors ``UncertainGraph.edge_subgraph``: the new vertex order
        is the order endpoints first appear in ``edges``.
        """
        edge_list = list(edges)
        order: List[int] = []
        seen = 0
        for i, j in edge_list:
            for v in (i, j):
                if not seen >> v & 1:
                    seen |= 1 << v
                    order.append(v)
        remap = {old: new for new, old in enumerate(order)}
        sub = CompactGraph([self.labels[i] for i in order])
        rows_ids: List[List[int]] = [[] for _ in order]
        rows_probs: List[List[float]] = [[] for _ in order]
        rows_nlogs: List[List[float]] = [[] for _ in order]
        for i, j in edge_list:
            p = self.prob[i][j]
            nl = self.nlog[i][j]
            a, b = remap[i], remap[j]
            rows_ids[a].append(b)
            rows_probs[a].append(p)
            rows_nlogs[a].append(nl)
            rows_ids[b].append(a)
            rows_probs[b].append(p)
            rows_nlogs[b].append(nl)
        for i in range(len(order)):
            sub._set_row(i, rows_ids[i], rows_probs[i], rows_nlogs[i])
        return sub

    def relabeled(self, order: Sequence[int]) -> "CompactGraph":
        """Copy with ids permuted so ``order[t]`` becomes id ``t``.

        Used to renumber vertices into enumeration-rank order, after
        which candidate bitsets iterate in rank order for free.
        """
        if len(order) != self.n:
            raise KernelBackendError("relabel order must cover all ids")
        remap = [0] * self.n
        for new, old in enumerate(order):
            remap[old] = new
        out = CompactGraph([self.labels[old] for old in order])
        for i, old in enumerate(order):
            out._set_row(
                i,
                [remap[j] for j in self.nbr_ids[old]],
                self.nbr_probs[old],
                self.nbr_nlogs[old],
            )
        return out

    def __repr__(self) -> str:
        return f"CompactGraph(n={self.n}, m={self.num_edges})"
