"""Run records and the one stamping writer every producer shares.

:class:`RunRecord` moved here from ``repro.bench.harness`` (which
re-exports it — public API unchanged).  Before the store existed,
every bench producer hand-rolled the same stamping dance: resolve the
*actually executed* backend, merge the env fingerprint, keep seconds
at full precision.  That logic now lives exactly once:

* :func:`stamped_record` — build a :class:`RunRecord` with the
  backend/variant stamps and the :func:`repro.obs.runtime.run_env`
  fingerprint merged into ``extra``;
* :func:`document_stamp` — the document-level ``env`` block for
  benchmark artifacts (speedup documents, trajectory meta), so every
  artifact ``repro.obs diff`` reads says where it ran.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.obs.runtime import run_env


@dataclass
class RunRecord:
    """One timed enumeration run."""

    label: str
    seconds: float
    num_cliques: int
    stats: Dict[str, int] = field(default_factory=dict)
    extra: Dict[str, object] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        # Full precision: rows feed machine-readable artifacts (JSON
        # dumps, trajectory diffs); rounding happens only at
        # text-render time (``_fmt`` in bench.harness / bench.report).
        row: Dict[str, object] = {
            "run": self.label,
            "seconds": self.seconds,
            "cliques": self.num_cliques,
        }
        row.update({f"stat_{k}": v for k, v in self.stats.items()})
        row.update(self.extra)
        return row


def stamped_record(
    label: str,
    seconds: float,
    num_cliques: int,
    stats: Optional[Dict[str, int]] = None,
    extra: Optional[Dict[str, object]] = None,
    backend: Optional[str] = None,
    variant: Optional[str] = None,
) -> RunRecord:
    """Build a :class:`RunRecord` with the standard stamps applied.

    ``backend`` must be the backend that *actually ran* (e.g.
    ``PivotEnumerator.backend_used`` — the kernel silently falls back
    to dict on unsupported inputs, and downstream diff tooling refuses
    cross-backend comparisons).  ``seconds`` is stored at full
    precision; the env fingerprint (python/platform/peak RSS) is
    merged last so a caller-provided ``extra`` cannot shadow it.
    """
    merged: Dict[str, object] = dict(extra or {})
    if backend is not None:
        merged["backend"] = backend
    if variant is not None:
        merged["variant"] = variant
    merged.update(run_env())
    return RunRecord(
        label, seconds, num_cliques, dict(stats or {}), merged
    )


def document_stamp() -> Dict[str, object]:
    """The per-document environment block for benchmark artifacts."""
    return run_env()
