"""Canonical run identity: content fingerprints and the RunKey.

Every persisted enumeration is addressed by a :class:`RunKey` — a
frozen record of *everything that determines the result bytes*:

* ``dataset`` — a sha256 fingerprint of the uncertain graph itself
  (sorted vertices, sorted normalized edges, type-tagged probability
  tokens), so renaming or re-generating a dataset never aliases a
  stored run and a single changed edge probability changes the key;
* ``k`` and the type-tagged canonical ``eta`` token (``float:0.05`` is
  a different key than ``fraction:1/20`` — the dict backend computes
  with exact Fractions, so the numeric *type* is part of the result
  semantics, not presentation);
* the **effective** ``backend`` (fallback-aware, see
  :func:`repro.kernel.enumerate.effective_backend`) and the hook
  ``variant`` class (``lean``/``hooked`` — hooked runs produce
  identical counters, but they are a different execution family and
  the stored wall-clock must never be served across the two);
* every :class:`~repro.core.config.PivotConfig` search axis
  (``ordering``/``pivot``/``mpivot``/``kpivot``/``reduction``);
* the ``procedure`` that shaped the search space — ``peel`` (direct
  reduction), ``slice`` (a :class:`~repro.core.session
  .CliqueQuerySession` decomposition slice) or ``peel/parts=N`` (the
  parallel driver's chunked run).  Clique sets agree across
  procedures, but effort counters are procedure-dependent (the slice
  is a sound superset of the peel, and parallel counters depend on
  chunking), and a stored record must replay byte-identically;
* the engine version ``salt`` — a hash over the verified source
  manifest of :func:`repro.engine.driver.engine_source_manifest` plus
  :data:`STORE_VERSION`, mirroring the analysis cache's
  ``salted_sources`` pattern: a missing module fails the salt loudly,
  and any engine change orphans every stored run.

Everything in this module must itself satisfy REP015 (the lint rule
this PR ships): only sorted iteration feeds a digest, and no
wall-clock, pid, absolute path or hash-ordered content ever enters a
key.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional

from repro.uncertain.graph import UncertainGraph, normalize_edge

#: Human-readable schema salt, folded into :func:`engine_salt`.  Bump
#: whenever the store's serialization or key semantics change in a way
#: that must orphan existing entries (the hashed engine sources cover
#: engine changes automatically; this is the escape hatch for store
#: changes).
STORE_VERSION = "2026.08-store-1"

_engine_salt_memo: Optional[str] = None


def probability_token(value) -> str:
    """Type-tagged canonical token for a probability (or ``eta``).

    ``repr`` round-trips floats exactly; Fractions are serialized from
    their normalized integer pair.  The type tag keeps ``0.05`` and
    ``Fraction(1, 20)`` distinct: they are different computations (log
    domain float versus exact rational) that merely happen to agree
    numerically.
    """
    if isinstance(value, Fraction):
        return "fraction:%d/%d" % (value.numerator, value.denominator)
    if isinstance(value, bool):
        raise TypeError("bool is not a probability")
    if isinstance(value, int):
        return "int:%d" % value
    if isinstance(value, float):
        return "float:" + repr(value)
    return "repr:" + repr(value)


def canonical_eta(eta) -> str:
    """The RunKey's ``eta`` field (see :func:`probability_token`)."""
    return probability_token(eta)


def graph_fingerprint(graph: UncertainGraph) -> str:
    """Content hash of an uncertain graph (structure + probabilities).

    Vertices and normalized edges are folded in sorted-by-``repr``
    order, so the fingerprint is independent of construction history
    and hash seed; probabilities use the type-tagged token, so a
    single perturbed edge weight changes the fingerprint.
    """
    digest = hashlib.sha256()
    for vertex in sorted(graph.vertices(), key=repr):
        digest.update(b"v\x00")
        digest.update(repr(vertex).encode())
        digest.update(b"\n")
    lines = []
    for u, v, p in graph.edges():
        a, b = normalize_edge(u, v)
        lines.append(
            "%s\x1f%s\x1f%s" % (repr(a), repr(b), probability_token(p))
        )
    for line in sorted(lines):
        digest.update(b"e\x00")
        digest.update(line.encode())
        digest.update(b"\n")
    return digest.hexdigest()


def engine_salt() -> str:
    """Hash of the engine's verified source manifest (memoized).

    Consumes :func:`repro.engine.driver.engine_source_manifest`, which
    raises rather than returning a partial module list — the same
    refuse-to-narrow contract as the analysis cache's
    ``salted_sources``.
    """
    global _engine_salt_memo
    if _engine_salt_memo is None:
        from repro.engine.driver import engine_source_manifest

        digest = hashlib.sha256()
        digest.update(STORE_VERSION.encode())
        digest.update(b"\x00")
        for name, blob in engine_source_manifest():
            digest.update(name.encode())
            digest.update(b"\x00")
            digest.update(blob)
            digest.update(b"\x00")
        _engine_salt_memo = digest.hexdigest()
    return _engine_salt_memo


def variant_class(config) -> str:
    """``"hooked"`` when sanitize/obs hooks compile into the recursion.

    Resolved through the same env-aware level resolution the engine
    itself uses (``REPRO_SANITIZE``/``REPRO_OBS`` apply when the
    config leaves a level at ``"off"``), so the key says what would
    actually run.  Hooked and lean variants are counter-identical
    (REP009/REP013 prove it) but belong to different timing families.
    """
    from repro.obs.observer import resolve_level as obs_level
    from repro.sanitize.sanitizer import resolve_level as sanitize_level

    hooked = (
        sanitize_level(config) != "off" or obs_level(config) != "off"
    )
    return "hooked" if hooked else "lean"


@dataclass(frozen=True)
class RunKey:
    """Canonical identity of one enumeration run (all fields strings
    except ``k``; see the module docstring for field semantics)."""

    dataset: str
    k: int
    eta: str
    backend: str
    variant: str
    ordering: str
    pivot: str
    mpivot: str
    kpivot: str
    reduction: str
    procedure: str
    salt: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "dataset": self.dataset,
            "k": self.k,
            "eta": self.eta,
            "backend": self.backend,
            "variant": self.variant,
            "ordering": self.ordering,
            "pivot": self.pivot,
            "mpivot": self.mpivot,
            "kpivot": self.kpivot,
            "reduction": self.reduction,
            "procedure": self.procedure,
            "salt": self.salt,
        }

    def digest(self) -> str:
        """Content address of this key (sha256 of its sorted JSON)."""
        payload = json.dumps(self.as_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "RunKey":
        return cls(**{name: raw[name] for name in cls.__dataclass_fields__})


def run_key_for(
    graph: UncertainGraph,
    k: int,
    eta,
    config,
    procedure: str = "peel",
    dataset_fingerprint: Optional[str] = None,
    reduction: Optional[str] = None,
) -> RunKey:
    """Build the :class:`RunKey` for one configured enumeration.

    ``dataset_fingerprint`` short-circuits the graph hash when the
    caller already computed it (sessions and the serve loop fingerprint
    once per graph, not once per query).  ``reduction`` overrides the
    config's reduction field for producers that apply a reduction
    outside the enumerator (the session slices with the enumerator's
    own reduction off; its key must still say ``triangle``).
    """
    from repro.kernel.enumerate import effective_backend

    return RunKey(
        dataset=(
            dataset_fingerprint
            if dataset_fingerprint is not None
            else graph_fingerprint(graph)
        ),
        k=k,
        eta=canonical_eta(eta),
        backend=effective_backend(graph, eta, config),
        variant=variant_class(config),
        ordering=config.ordering,
        pivot=config.pivot,
        mpivot=config.mpivot,
        kpivot=config.kpivot,
        reduction=reduction if reduction is not None else config.reduction,
        procedure=procedure,
        salt=engine_salt(),
    )


@dataclass(frozen=True)
class ReductionKey:
    """Identity of one shared ``(Top_k, η)`` decomposition.

    Valid for every ``k`` (the decompositions carry per-``k`` shells)
    and for every backend/variant (they are pure graph structure), but
    only for an *exact* ``dataset``/``eta``/``salt`` match: the shell
    values are functions of the probability threshold, so there is no
    sound cross-``eta`` reuse — the key proves validity by equality,
    never by approximation.
    """

    dataset: str
    eta: str
    salt: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "dataset": self.dataset,
            "eta": self.eta,
            "salt": self.salt,
        }

    def digest(self) -> str:
        payload = json.dumps(self.as_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()


def reduction_key_for(
    graph: UncertainGraph,
    eta,
    dataset_fingerprint: Optional[str] = None,
) -> ReductionKey:
    """The shared-reduction cache key for ``(graph, eta)``."""
    return ReductionKey(
        dataset=(
            dataset_fingerprint
            if dataset_fingerprint is not None
            else graph_fingerprint(graph)
        ),
        eta=canonical_eta(eta),
        salt=engine_salt(),
    )
