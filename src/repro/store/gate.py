"""CI gate: the end-to-end cache demo for the run store.

Drives one workload through :class:`~repro.store.service
.EnumerationService` twice and fails unless the store's contracts hold
on the *observable* surfaces:

1. **Zero recursion on a hit** — the first enumeration is a miss and
   registers exactly one observer (the run is observed at
   ``obs="light"``); the second enumeration of the identical RunKey is
   a hit and registers **zero** observers inside an active
   :func:`~repro.obs.session.observe` session — no enumerator was
   built, no engine recursion happened — while returning the stored
   cliques and byte-identical counters.
2. **Byte-identical query output** — ``repro-store query show``
   renders the same bytes after the live run and after the replay (the
   renderer reads only stored content, so a hit cannot drift).
3. **Key sensitivity, differentially verified** — changing η, or
   perturbing a single edge probability, changes the RunKey (fresh
   miss, different digest) and the freshly stored result equals a
   from-scratch :class:`~repro.core.pmuc.PivotEnumerator` run.
4. **Cross-procedure clique identity** — the session ``slice`` run
   stores under a different key (procedure-dependent counters) but
   yields the same clique set as the ``peel`` run.
5. **Corruption degrades to a miss** — flipping one byte of a stored
   clique file makes the key miss, and the re-run heals the entry.

Usage (the CI ``store`` job)::

    PYTHONPATH=src python -m repro.store.gate --store store-artifacts
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
from dataclasses import replace
from typing import List, Optional

from repro.bench.kernel_speedup import WORKLOADS, build_graph
from repro.core.config import PMUC_PLUS_CONFIG
from repro.core.pmuc import PivotEnumerator
from repro.store.cli import render_show
from repro.store.service import EnumerationService
from repro.store.store import RunStore

DEFAULT_WORKLOAD = "communities-100"


def _clique_sets(result) -> set:
    return set(map(frozenset, result.cliques))


def _counters(result) -> str:
    return json.dumps(result.stats.as_dict(), sort_keys=True)


def run_gate(
    workload: str = DEFAULT_WORKLOAD,
    store_dir: str = "store-artifacts",
) -> List[str]:
    """Run the demo and return the list of failures (empty = pass)."""
    from repro.obs.session import observe

    spec = next(w for w in WORKLOADS if w["name"] == workload)
    graph = build_graph(spec["params"])  # type: ignore[index]
    k, eta = spec["k"], spec["eta"]
    config = replace(PMUC_PLUS_CONFIG, obs="light")

    # The gate owns its artifact directory; a stale store would turn
    # the first run into a hit and make every assertion vacuous.
    shutil.rmtree(store_dir, ignore_errors=True)
    store = RunStore(store_dir)
    service = EnumerationService(store, config)
    failures: List[str] = []

    # -- 1. miss, then a zero-recursion hit ----------------------------
    with observe() as session:
        first = service.enumerate(graph, k, eta, label="gate")
    if first.hit:
        failures.append("first enumeration hit a fresh store")
    if len(session.observers) != 1:
        failures.append(
            "live run registered %d observers, expected 1 (is the "
            "zero-recursion instrument wired?)" % len(session.observers)
        )
    with observe() as session:
        second = service.enumerate(graph, k, eta, label="gate")
    if not second.hit:
        failures.append("identical RunKey missed on the second run")
    if len(session.observers) != 0:
        failures.append(
            "cache hit registered %d observers — engine recursion "
            "happened on a hit" % len(session.observers)
        )
    if second.digest != first.digest:
        failures.append("hit returned a different digest")
    if _clique_sets(second.result) != _clique_sets(first.result):
        failures.append("hit returned a different clique set")
    if _counters(second.result) != _counters(first.result):
        failures.append(
            "hit counters differ from the stored run's: %s vs %s"
            % (_counters(second.result), _counters(first.result))
        )

    # -- 2. byte-identical `query show` between live run and replay ----
    shows = []
    for _ in range(2):
        stored = store.get_by_digest(first.digest)
        if stored is None:
            failures.append("stored run unreadable for query show")
            break
        shows.append(
            render_show(stored, "json") + "\n" + render_show(stored, "table")
        )
    if len(shows) == 2 and shows[0] != shows[1]:
        failures.append("query show output not byte-identical on replay")

    # -- 3a. changed η changes the key; differential verification ------
    eta_prime = eta / 2
    shifted = service.enumerate(graph, k, eta_prime, label="gate-eta")
    if shifted.hit:
        failures.append("changed η still hit the old key")
    if shifted.digest == first.digest:
        failures.append("changed η did not change the RunKey digest")
    scratch = PivotEnumerator(graph, k, eta_prime, config).run()
    if _clique_sets(shifted.result) != _clique_sets(scratch):
        failures.append(
            "stored η'-run differs from a from-scratch enumeration"
        )

    # -- 3b. one perturbed edge probability changes the key ------------
    perturbed = graph.copy()
    u, v, p = sorted(graph.edges(), key=repr)[0]
    perturbed.add_edge(u, v, p * 0.5)
    bumped = service.enumerate(perturbed, k, eta, label="gate-edge")
    if bumped.hit:
        failures.append("perturbed edge probability still hit the old key")
    if bumped.digest == first.digest:
        failures.append("perturbed edge did not change the RunKey digest")
    scratch = PivotEnumerator(perturbed, k, eta, config).run()
    if _clique_sets(bumped.result) != _clique_sets(scratch):
        failures.append(
            "stored perturbed-run differs from a from-scratch enumeration"
        )

    # -- 4. slice procedure: different key, same cliques ---------------
    sliced = service.query(graph, k, eta)
    # repro-lint: ok REP003 digests are sha256 hex strings, not probabilities
    if sliced.digest == first.digest:
        failures.append("slice procedure shares the peel RunKey")
    if _clique_sets(sliced.result) != _clique_sets(first.result):
        failures.append("slice clique set differs from the peel run's")

    # -- 5. corruption degrades to a miss, then heals ------------------
    target = os.path.join(store.run_dir(first.digest), "cliques.jsonl")
    with open(target, "r+b") as handle:
        blob = handle.read()
        handle.seek(0)
        handle.write(bytes([blob[0] ^ 0xFF]) + blob[1:])
    relisted = store.get_by_digest(first.digest)
    if relisted is not None:
        failures.append("corrupted entry still verified on read")
    healed = service.enumerate(graph, k, eta, label="gate")
    if healed.hit:
        failures.append("corrupted entry served as a cache hit")
    refetched = service.enumerate(graph, k, eta, label="gate")
    if not refetched.hit:
        failures.append("re-published entry did not heal the digest")
    if _clique_sets(refetched.result) != _clique_sets(first.result):
        failures.append("healed entry returned a different clique set")

    print(
        "store gate: %d runs stored, hits=%d misses=%d"
        % (len(store.list_runs()), store.hits, store.misses)
    )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.store.gate",
        description=(
            "Gate: an identical RunKey must replay from the store with "
            "zero engine recursion and byte-identical query output."
        ),
    )
    parser.add_argument(
        "--workload",
        default=DEFAULT_WORKLOAD,
        choices=tuple(w["name"] for w in WORKLOADS),
        help="workload spec to enumerate (default: %(default)s)",
    )
    parser.add_argument(
        "--store",
        default="store-artifacts",
        metavar="DIR",
        help="store directory (wiped first; default: %(default)s)",
    )
    args = parser.parse_args(argv)
    failures = run_gate(workload=args.workload, store_dir=args.store)
    for failure in failures:
        print("GATE FAILURE: %s" % failure)
    if failures:
        return 1
    print("store gate ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
