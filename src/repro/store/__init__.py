"""Content-addressed run store and the enumeration service layer.

The store answers one question: *has this exact enumeration already
happened?* — where "exact" is the canonical :class:`~repro.store.key
.RunKey` (dataset content fingerprint, ``k``, type-tagged η, effective
backend, hook variant class, every search axis, the shaping procedure,
and the engine source salt).  Entries are published crash-safely
(staged + atomic rename), verified on read (per-file sha256 against a
manifest), and any damage degrades to a cache miss.

Layers:

* :mod:`repro.store.key` — canonical identity (RunKey/ReductionKey);
* :mod:`repro.store.records` — :class:`RunRecord` plus the one
  stamping writer all producers share;
* :mod:`repro.store.store` — the on-disk store itself;
* :mod:`repro.store.service` — :class:`EnumerationService` (store-hit
  enumeration, shared-reduction sessions) and the JSON-lines
  :class:`ServeLoop`;
* :mod:`repro.store.cli` — ``repro-store run / query / serve``;
* :mod:`repro.store.gate` — the CI end-to-end cache demo.
"""

from repro.store.key import (
    STORE_VERSION,
    ReductionKey,
    RunKey,
    canonical_eta,
    engine_salt,
    graph_fingerprint,
    probability_token,
    reduction_key_for,
    run_key_for,
    variant_class,
)
from repro.store.records import RunRecord, document_stamp, stamped_record
from repro.store.service import EnumerationService, ServeLoop, parse_eta
from repro.store.store import DEFAULT_STORE_DIR, RunStore, StoredRun

__all__ = [
    "STORE_VERSION",
    "ReductionKey",
    "RunKey",
    "canonical_eta",
    "engine_salt",
    "graph_fingerprint",
    "probability_token",
    "reduction_key_for",
    "run_key_for",
    "variant_class",
    "RunRecord",
    "document_stamp",
    "stamped_record",
    "EnumerationService",
    "ServeLoop",
    "parse_eta",
    "DEFAULT_STORE_DIR",
    "RunStore",
    "StoredRun",
]
