"""The content-addressed, crash-safe run store.

Layout (two-level fan-out keeps directory listings short, like the
analysis cache)::

    <root>/runs/<digest[:2]>/<digest>/
        MANIFEST.json       # {"format": 1, "files": {name: sha256}}
        key.json            # the RunKey fields
        record.json         # the RunRecord (label/seconds/stats/extra)
        cliques.jsonl       # one sorted JSON array per clique
        violation.json      # only for sanitized runs that failed
        artifacts/<name>    # registered files (flight logs, traces)
    <root>/reductions/<digest[:2]>/<digest>/
        MANIFEST.json
        core.jsonl          # per-vertex (Top_k, η)-core shells
        triangle.jsonl      # per-edge (Top_k, η)-triangle shells

**Crash safety** — every entry is staged in a temporary directory and
published with one atomic ``os.rename``; a crashed writer leaves only
an unreachable temp dir, never a half-entry.  First write wins: if the
destination exists the stage is discarded, which is correct because
entries are content-addressed (same key ⇒ byte-identical payload).

**Corruption degrades to a miss** — every read re-hashes each file
against the manifest; a flipped byte, a truncated tail (the flight
recorder's tolerance pattern applied to storage: damaged tails must
never poison a replay) or a missing file makes ``get`` return None.
A run store must never fail an enumeration — it can only fail to
shortcut one.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.store.key import ReductionKey, RunKey
from repro.store.records import RunRecord

#: Default store location, relative to the working directory.
DEFAULT_STORE_DIR = ".repro-store"

_STORE_FORMAT = 1

_MANIFEST = "MANIFEST.json"


def _sha256(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


def _clique_lines(cliques) -> List[str]:
    """Canonical JSONL body for a clique set.

    Cliques sort by (size, member reprs) — the same canonical order as
    ``EnumerationResult.as_sorted_sets`` — and members sort by repr
    inside each line, so identical clique sets serialize to identical
    bytes regardless of enumeration order.
    """
    rows = []
    for clique in cliques:
        members = sorted(clique, key=repr)
        rows.append((len(members), [repr(m) for m in members], members))
    rows.sort(key=lambda row: (row[0], row[1]))
    return [
        json.dumps(members, default=str, sort_keys=True)
        for _size, _reprs, members in rows
    ]


def _freeze(vertex):
    """JSON round-trips tuples to lists; restore hashability."""
    if isinstance(vertex, list):
        return tuple(_freeze(item) for item in vertex)
    return vertex


@dataclass
class StoredRun:
    """One materialized store entry."""

    digest: str
    key: RunKey
    record: RunRecord
    cliques: Optional[List[frozenset]] = None
    violation: Optional[Dict[str, object]] = None
    artifacts: Dict[str, str] = field(default_factory=dict)

    def result(self):
        """Rebuild an :class:`~repro.core.stats.EnumerationResult`.

        The counters are the *producing run's* counters, replayed
        verbatim — a cache hit reports exactly the effort the stored
        run spent, not zero and not a recomputation.
        """
        from repro.core.stats import EnumerationResult, SearchStats

        result = EnumerationResult()
        result.cliques.extend(self.cliques or [])
        known = set(SearchStats().as_dict())
        result.stats = SearchStats(
            **{
                name: value
                for name, value in self.record.stats.items()
                if name in known
            }
        )
        return result


class RunStore:
    """Content-addressed persistence for enumeration runs."""

    def __init__(self, root: str = DEFAULT_STORE_DIR):
        self.root = root
        self.hits = 0
        self.misses = 0

    # -- layout --------------------------------------------------------
    def _entry_dir(self, kind: str, digest: str) -> str:
        return os.path.join(self.root, kind, digest[:2], digest)

    def run_dir(self, digest: str) -> str:
        return self._entry_dir("runs", digest)

    # -- atomic publication --------------------------------------------
    def _publish(self, kind: str, digest: str,
                 files: Dict[str, bytes]) -> str:
        """Stage ``files`` plus their manifest, then rename into place."""
        final = self._entry_dir(kind, digest)
        parent = os.path.dirname(final)
        os.makedirs(parent, exist_ok=True)
        stage = tempfile.mkdtemp(dir=parent, prefix="stage-")
        try:
            manifest = {"format": _STORE_FORMAT, "files": {}}
            for name in sorted(files):
                blob = files[name]
                path = os.path.join(stage, name)
                os.makedirs(os.path.dirname(path), exist_ok=True)
                with open(path, "wb") as handle:
                    handle.write(blob)
                manifest["files"][name] = _sha256(blob)
            with open(
                os.path.join(stage, _MANIFEST), "w", encoding="utf-8"
            ) as handle:
                json.dump(manifest, handle, indent=2, sort_keys=True)
                handle.write("\n")
            if os.path.exists(final):
                if self._verified_read(kind, digest) is not None:
                    # Content-addressed: the existing entry is
                    # equivalent (same key ⇒ byte-identical payload).
                    shutil.rmtree(stage, ignore_errors=True)
                    return final
                # A damaged entry would otherwise pin its digest as a
                # permanent miss: evict it and let the fresh stage win.
                shutil.rmtree(final, ignore_errors=True)
            try:
                os.rename(stage, final)
            except OSError:
                # Lost a publication race; the winner's entry stands.
                shutil.rmtree(stage, ignore_errors=True)
            return final
        except BaseException:
            shutil.rmtree(stage, ignore_errors=True)
            raise

    def _verified_read(
        self, kind: str, digest: str
    ) -> Optional[Dict[str, bytes]]:
        """Every file of an entry, re-hashed against its manifest.

        Returns None — a miss — on any damage: unreadable manifest,
        missing file, flipped byte, truncated tail.
        """
        entry = self._entry_dir(kind, digest)
        try:
            with open(
                os.path.join(entry, _MANIFEST), encoding="utf-8"
            ) as handle:
                manifest = json.load(handle)
            if manifest.get("format") != _STORE_FORMAT:
                raise ValueError("stale store format")
            files: Dict[str, bytes] = {}
            for name in sorted(manifest["files"]):
                with open(os.path.join(entry, name), "rb") as handle:
                    blob = handle.read()
                if _sha256(blob) != manifest["files"][name]:
                    raise ValueError("content hash mismatch: %s" % name)
                files[name] = blob
            return files
        except (OSError, ValueError, KeyError, TypeError):
            return None

    # -- runs ----------------------------------------------------------
    def put_run(
        self,
        key: RunKey,
        record: RunRecord,
        cliques=None,
        violation: Optional[Dict[str, object]] = None,
    ) -> str:
        """Persist one run; returns its digest."""
        digest = key.digest()
        files: Dict[str, bytes] = {
            "key.json": (
                json.dumps(key.as_dict(), indent=2, sort_keys=True) + "\n"
            ).encode(),
            "record.json": (
                json.dumps(
                    {
                        "label": record.label,
                        "seconds": record.seconds,
                        "num_cliques": record.num_cliques,
                        "stats": record.stats,
                        "extra": record.extra,
                    },
                    default=str,
                    indent=2,
                    sort_keys=True,
                )
                + "\n"
            ).encode(),
        }
        if cliques is not None:
            body = "\n".join(_clique_lines(cliques))
            files["cliques.jsonl"] = (
                (body + "\n") if body else ""
            ).encode()
        if violation is not None:
            files["violation.json"] = (
                json.dumps(violation, default=str, indent=2, sort_keys=True)
                + "\n"
            ).encode()
        self._publish("runs", digest, files)
        return digest

    def get_run(
        self, key: RunKey, with_cliques: bool = True
    ) -> Optional[StoredRun]:
        """The stored run for ``key``, or None (miss/corrupt)."""
        stored = self._load_run(key.digest(), with_cliques=with_cliques)
        if stored is None:
            self.misses += 1
            return None
        if stored.key != key:
            # A digest collision or tampered key file: treat as damage.
            self.misses += 1
            return None
        self.hits += 1
        return stored

    def has(self, key: RunKey) -> bool:
        return self._verified_read("runs", key.digest()) is not None

    def get_by_digest(
        self, digest: str, with_cliques: bool = True
    ) -> Optional[StoredRun]:
        """Lookup by digest or unique digest prefix (CLI surface)."""
        if len(digest) < 64:
            matches = [
                d for d in self._iter_digests("runs")
                if d.startswith(digest)
            ]
            if len(matches) != 1:
                return None
            digest = matches[0]
        return self._load_run(digest, with_cliques=with_cliques)

    def _load_run(
        self, digest: str, with_cliques: bool
    ) -> Optional[StoredRun]:
        files = self._verified_read("runs", digest)
        if files is None:
            return None
        try:
            key = RunKey.from_dict(json.loads(files["key.json"]))
            raw = json.loads(files["record.json"])
            record = RunRecord(
                label=raw["label"],
                seconds=raw["seconds"],
                num_cliques=raw["num_cliques"],
                stats=dict(raw.get("stats", {})),
                extra=dict(raw.get("extra", {})),
            )
        except (ValueError, KeyError, TypeError):
            return None
        cliques = None
        if with_cliques and "cliques.jsonl" in files:
            cliques = []
            for line in files["cliques.jsonl"].decode().splitlines():
                if not line.strip():
                    continue
                cliques.append(
                    frozenset(_freeze(v) for v in json.loads(line))
                )
        violation = None
        if "violation.json" in files:
            violation = json.loads(files["violation.json"])
        artifacts = {
            name[len("artifacts/"):]: os.path.join(
                self.run_dir(digest), name
            )
            for name in files
            if name.startswith("artifacts/")
        }
        return StoredRun(
            digest=digest,
            key=key,
            record=record,
            cliques=cliques,
            violation=violation,
            artifacts=artifacts,
        )

    def _iter_digests(self, kind: str) -> Iterator[str]:
        base = os.path.join(self.root, kind)
        if not os.path.isdir(base):
            return
        for fan in sorted(os.listdir(base)):
            fan_dir = os.path.join(base, fan)
            if not os.path.isdir(fan_dir):
                continue
            for digest in sorted(os.listdir(fan_dir)):
                if len(digest) == 64:
                    yield digest

    def list_runs(self) -> List[StoredRun]:
        """Every readable run entry (metadata only, cliques skipped)."""
        runs = []
        for digest in self._iter_digests("runs"):
            stored = self._load_run(digest, with_cliques=False)
            if stored is not None:
                runs.append(stored)
        return runs

    # -- artifacts -----------------------------------------------------
    def register_artifact(
        self, digest: str, name: str, source_path: str
    ) -> Optional[str]:
        """Copy ``source_path`` under the run and extend its manifest.

        Returns the stored path, or None when the run entry does not
        exist or the artifact cannot be read (registration is best
        effort — an artifact must never fail the run that produced it).
        """
        entry = self.run_dir(digest)
        manifest_path = os.path.join(entry, _MANIFEST)
        try:
            with open(manifest_path, encoding="utf-8") as handle:
                manifest = json.load(handle)
            with open(source_path, "rb") as handle:
                blob = handle.read()
            rel = "artifacts/" + os.path.basename(name)
            target = os.path.join(entry, rel)
            os.makedirs(os.path.dirname(target), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(target), suffix=".tmp"
            )
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, target)
            manifest["files"][rel] = _sha256(blob)
            fd, tmp = tempfile.mkstemp(dir=entry, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, manifest_path)
            return target
        except (OSError, ValueError, KeyError, TypeError):
            return None

    # -- shared reductions ---------------------------------------------
    def put_reduction(
        self,
        key: ReductionKey,
        core_shell: Dict[object, int],
        triangle_shell: Dict[Tuple[object, object], int],
    ) -> str:
        """Persist one (core, triangle) decomposition pair."""
        digest = key.digest()
        core_rows = sorted(
            (json.dumps([v, shell], default=str)
             for v, shell in core_shell.items()),
        )
        triangle_rows = sorted(
            (json.dumps([e[0], e[1], shell], default=str)
             for e, shell in triangle_shell.items()),
        )
        files = {
            "reduction_key.json": (
                json.dumps(key.as_dict(), indent=2, sort_keys=True) + "\n"
            ).encode(),
            "core.jsonl": (
                ("\n".join(core_rows) + "\n") if core_rows else ""
            ).encode(),
            "triangle.jsonl": (
                ("\n".join(triangle_rows) + "\n") if triangle_rows else ""
            ).encode(),
        }
        self._publish("reductions", digest, files)
        return digest

    def get_reduction(
        self, key: ReductionKey
    ) -> Optional[Tuple[Dict[object, int],
                        Dict[Tuple[object, object], int]]]:
        """The stored decompositions for ``key``, or None."""
        files = self._verified_read("reductions", key.digest())
        if files is None:
            self.misses += 1
            return None
        try:
            core_shell: Dict[object, int] = {}
            for line in files["core.jsonl"].decode().splitlines():
                if not line.strip():
                    continue
                vertex, shell = json.loads(line)
                core_shell[_freeze(vertex)] = shell
            triangle_shell: Dict[Tuple[object, object], int] = {}
            for line in files["triangle.jsonl"].decode().splitlines():
                if not line.strip():
                    continue
                u, v, shell = json.loads(line)
                triangle_shell[(_freeze(u), _freeze(v))] = shell
        except (ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return core_shell, triangle_shell
