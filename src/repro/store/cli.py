"""``repro-store`` — run, query and serve stored enumerations.

Usage::

    repro-store [--store DIR] run --dataset enron --k 5 --eta 0.1
    repro-store [--store DIR] query list [--format table|csv|json]
    repro-store [--store DIR] query show DIGEST [--cliques]
    repro-store [--store DIR] query diff DIGEST DIGEST
    repro-store [--store DIR] query export DIGEST [--out PATH]
    repro-store [--store DIR] serve [--socket HOST:PORT]

``query show`` renders **only stored bytes**: its output for a digest
is byte-identical whether the entry was written by a live run a moment
ago or replayed from the store a month later — that identity is what
the CI ``store`` job asserts.  ``query diff`` exits 0 when the two
runs' clique sets are identical, 1 when they differ, 2 on usage
errors (mirroring ``repro.obs diff``).
"""

from __future__ import annotations

import argparse
import csv
import io
import json
import sys
from typing import Dict, List, Optional, Sequence

from repro.store.service import EnumerationService, ServeLoop, parse_eta
from repro.store.store import DEFAULT_STORE_DIR, RunStore, StoredRun

_KEY_FIELDS = (
    "dataset", "k", "eta", "backend", "variant", "ordering", "pivot",
    "mpivot", "kpivot", "reduction", "procedure", "salt",
)


# ----------------------------------------------------------------------
# rendering (shared by ``run`` and ``query`` — byte-identity by design)
# ----------------------------------------------------------------------
def list_row(stored: StoredRun) -> Dict[str, object]:
    key = stored.key
    return {
        "digest": stored.digest[:12],
        "run": stored.record.label,
        "dataset": key.dataset[:12],
        "k": key.k,
        "eta": key.eta,
        "procedure": key.procedure,
        "backend": key.backend,
        "variant": key.variant,
        "cliques": stored.record.num_cliques,
        "seconds": stored.record.seconds,
        "violation": "yes" if stored.violation is not None else "-",
    }


def render_rows(
    rows: List[Dict[str, object]], fmt: str, title: Optional[str] = None
) -> str:
    if fmt == "json":
        return json.dumps(rows, indent=2, sort_keys=True, default=str)
    if fmt == "csv":
        if not rows:
            return ""
        columns: List[str] = []
        for row in rows:
            for name in row:
                if name not in columns:
                    columns.append(name)
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
        return buffer.getvalue().rstrip("\n")
    from repro.bench.harness import format_table

    return format_table(rows, title=title)


def show_document(
    stored: StoredRun, with_cliques: bool = False
) -> Dict[str, object]:
    document: Dict[str, object] = {
        "digest": stored.digest,
        "key": stored.key.as_dict(),
        "record": {
            "label": stored.record.label,
            "seconds": stored.record.seconds,
            "num_cliques": stored.record.num_cliques,
            "stats": stored.record.stats,
            "extra": stored.record.extra,
        },
    }
    if stored.violation is not None:
        document["violation"] = stored.violation
    if stored.artifacts:
        document["artifacts"] = sorted(stored.artifacts)
    if with_cliques and stored.cliques is not None:
        document["cliques"] = [
            sorted((repr(m) for m in clique))
            for clique in stored.cliques
        ]
        document["cliques"].sort(key=lambda members: (len(members), members))
    return document


def render_show(
    stored: StoredRun, fmt: str, with_cliques: bool = False
) -> str:
    document = show_document(stored, with_cliques=with_cliques)
    if fmt == "json":
        return json.dumps(document, indent=2, sort_keys=True, default=str)
    rows = [
        {"field": name, "value": getattr(stored.key, name)}
        for name in _KEY_FIELDS
    ]
    record = document["record"]
    rows.append({"field": "label", "value": record["label"]})
    rows.append({"field": "seconds", "value": repr(record["seconds"])})
    rows.append({"field": "cliques", "value": record["num_cliques"]})
    for name in sorted(record["stats"]):
        rows.append(
            {"field": "stat_%s" % name, "value": record["stats"][name]}
        )
    if stored.violation is not None:
        rows.append(
            {
                "field": "violation",
                "value": "%s (%s)" % (
                    stored.violation.get("check", "?"),
                    stored.violation.get("name", "?"),
                ),
            }
        )
    for name in sorted(stored.artifacts):
        rows.append({"field": "artifact", "value": name})
    lines = [render_rows(rows, "table", title="run %s" % stored.digest)]
    if with_cliques and "cliques" in document:
        lines.extend(
            json.dumps(members) for members in document["cliques"]
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------
def _cmd_run(args) -> int:
    from dataclasses import replace

    from repro.core.config import PMUC_PLUS_CONFIG
    from repro.datasets import load_dataset

    try:
        eta = parse_eta(args.eta)
    except ValueError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    graph = load_dataset(
        args.dataset, seed=args.seed, probability_model=args.probability_model
    )
    config = PMUC_PLUS_CONFIG
    if args.backend is not None:
        config = replace(config, backend=args.backend)
    if args.sanitize is not None:
        config = replace(config, sanitize=args.sanitize)
    store = RunStore(args.store)
    service = EnumerationService(store, config)
    if args.procedure == "peel":
        outcome = service.enumerate(
            graph, args.k, eta, label="run:%s" % args.dataset
        )
    else:
        outcome = service.query(graph, args.k, eta)
    print(
        "%s %s k=%d eta=%s procedure=%s: %s"
        % (
            "hit" if outcome.hit else "miss",
            outcome.digest[:12],
            args.k,
            outcome.key.eta,
            outcome.key.procedure,
            "served from store" if outcome.hit else "enumerated and stored",
        )
    )
    stored = store.get_by_digest(outcome.digest)
    if stored is None:
        print("error: stored entry unreadable", file=sys.stderr)
        return 1
    print(render_show(stored, args.format))
    return 0


def _resolve(store: RunStore, digest: str) -> Optional[StoredRun]:
    stored = store.get_by_digest(digest)
    if stored is None:
        print(
            "error: no unique readable run matches %r" % digest,
            file=sys.stderr,
        )
    return stored


def _cmd_query_list(args) -> int:
    store = RunStore(args.store)
    rows = [list_row(stored) for stored in store.list_runs()]
    print(render_rows(rows, args.format, title="stored runs"))
    return 0


def _cmd_query_show(args) -> int:
    store = RunStore(args.store)
    stored = _resolve(store, args.digest)
    if stored is None:
        return 2
    print(render_show(stored, args.format, with_cliques=args.cliques))
    return 0


def _cmd_query_diff(args) -> int:
    store = RunStore(args.store)
    left = _resolve(store, args.left)
    right = _resolve(store, args.right)
    if left is None or right is None:
        return 2
    rows: List[Dict[str, object]] = []
    for name in _KEY_FIELDS:
        a, b = getattr(left.key, name), getattr(right.key, name)
        rows.append(
            {
                "field": name,
                "a": a,
                "b": b,
                "same": "yes" if a == b else "NO",
            }
        )
    counters = sorted(
        set(left.record.stats) | set(right.record.stats)
    )
    for name in counters:
        a = left.record.stats.get(name)
        b = right.record.stats.get(name)
        rows.append(
            {
                "field": "stat_%s" % name,
                "a": a,
                "b": b,
                "same": "yes" if a == b else "NO",
            }
        )
    left_cliques = (
        None
        if left.cliques is None
        else set(map(frozenset, left.cliques))
    )
    right_cliques = (
        None
        if right.cliques is None
        else set(map(frozenset, right.cliques))
    )
    cliques_equal = (
        left_cliques is not None
        and right_cliques is not None
        and left_cliques == right_cliques
    )
    rows.append(
        {
            "field": "cliques",
            "a": left.record.num_cliques,
            "b": right.record.num_cliques,
            "same": "yes" if cliques_equal else "NO",
        }
    )
    print(
        render_rows(
            rows,
            args.format,
            title="diff %s vs %s" % (left.digest[:12], right.digest[:12]),
        )
    )
    return 0 if cliques_equal else 1


def _cmd_query_export(args) -> int:
    store = RunStore(args.store)
    stored = _resolve(store, args.digest)
    if stored is None:
        return 2
    if args.what == "record":
        body = json.dumps(
            show_document(stored), indent=2, sort_keys=True, default=str
        )
    else:
        if stored.cliques is None:
            print(
                "error: run %s stores no clique set" % stored.digest[:12],
                file=sys.stderr,
            )
            return 2
        members_rows = sorted(
            (
                sorted((repr(m) for m in clique))
                for clique in stored.cliques
            ),
            key=lambda members: (len(members), members),
        )
        if args.format == "csv":
            buffer = io.StringIO()
            writer = csv.writer(buffer)
            writer.writerow(["size", "members"])
            for members in members_rows:
                writer.writerow([len(members), ";".join(members)])
            body = buffer.getvalue().rstrip("\n")
        elif args.format == "json":
            body = json.dumps(members_rows, indent=2, sort_keys=True)
        else:  # jsonl
            body = "\n".join(json.dumps(m) for m in members_rows)
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(body + "\n")
        print("wrote %s" % args.out)
    else:
        print(body)
    return 0


def _cmd_serve(args) -> int:
    store = RunStore(args.store)
    loop = ServeLoop(EnumerationService(store))
    if args.socket is not None:
        host, _, port = args.socket.rpartition(":")
        if not host or not port.isdigit():
            print(
                "error: --socket expects HOST:PORT, got %r" % args.socket,
                file=sys.stderr,
            )
            return 2
        return _serve_socket(loop, host, int(port))
    for line in sys.stdin:
        line = line.strip()
        if not line:
            continue
        sys.stdout.write(loop.handle_line(line) + "\n")
        sys.stdout.flush()
    return 0


def _serve_socket(loop: ServeLoop, host: str, port: int) -> int:
    import socketserver

    class Handler(socketserver.StreamRequestHandler):
        def handle(self):
            for raw in self.rfile:
                line = raw.decode("utf-8", "replace").strip()
                if not line:
                    continue
                self.wfile.write((loop.handle_line(line) + "\n").encode())
                self.wfile.flush()

    class Server(socketserver.ThreadingTCPServer):
        allow_reuse_address = True
        daemon_threads = True

    with Server((host, port), Handler) as server:
        bound = server.server_address
        print("serving on %s:%d" % (bound[0], bound[1]), flush=True)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
    return 0


# ----------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-store",
        description=(
            "Content-addressed enumeration store: run, query and serve "
            "maximal (k, η)-clique enumerations (see docs/architecture.md)."
        ),
    )
    parser.add_argument(
        "--store",
        default=DEFAULT_STORE_DIR,
        metavar="DIR",
        help="store directory (default: %(default)s)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="enumerate through the store")
    run.add_argument("--dataset", required=True, help="dataset name")
    run.add_argument("--seed", type=int, default=0, help="dataset seed")
    run.add_argument(
        "--probability-model",
        default="exponential",
        help="dataset probability model (default: %(default)s)",
    )
    run.add_argument("--k", type=int, required=True, help="minimum clique size")
    run.add_argument(
        "--eta", required=True,
        help="probability threshold (0.1 or an exact fraction like 1/10)",
    )
    run.add_argument(
        "--backend", choices=("dict", "kernel"), default=None,
        help="override the enumeration backend",
    )
    run.add_argument(
        "--sanitize", choices=("off", "light", "full"), default=None,
        help="override the sanitizer level",
    )
    run.add_argument(
        "--procedure", choices=("peel", "slice"), default="peel",
        help="direct reduction or session decomposition slice",
    )
    run.add_argument(
        "--format", choices=("table", "json"), default="table",
    )
    run.set_defaults(func=_cmd_run)

    query = sub.add_parser("query", help="inspect stored runs")
    query_sub = query.add_subparsers(dest="query_command", required=True)

    q_list = query_sub.add_parser("list", help="list stored runs")
    q_list.add_argument(
        "--format", choices=("table", "csv", "json"), default="table"
    )
    q_list.set_defaults(func=_cmd_query_list)

    q_show = query_sub.add_parser("show", help="show one stored run")
    q_show.add_argument("digest", help="digest or unique prefix")
    q_show.add_argument(
        "--format", choices=("table", "json"), default="table"
    )
    q_show.add_argument(
        "--cliques", action="store_true", help="include the clique set"
    )
    q_show.set_defaults(func=_cmd_query_show)

    q_diff = query_sub.add_parser("diff", help="compare two stored runs")
    q_diff.add_argument("left", help="digest or unique prefix")
    q_diff.add_argument("right", help="digest or unique prefix")
    q_diff.add_argument(
        "--format", choices=("table", "csv", "json"), default="table"
    )
    q_diff.set_defaults(func=_cmd_query_diff)

    q_export = query_sub.add_parser(
        "export", help="export a stored clique set or record"
    )
    q_export.add_argument("digest", help="digest or unique prefix")
    q_export.add_argument(
        "--what", choices=("cliques", "record"), default="cliques"
    )
    q_export.add_argument(
        "--format", choices=("jsonl", "json", "csv"), default="jsonl"
    )
    q_export.add_argument("--out", default=None, metavar="PATH")
    q_export.set_defaults(func=_cmd_query_export)

    serve = sub.add_parser(
        "serve", help="answer JSON-lines enumeration requests"
    )
    serve.add_argument(
        "--socket", default=None, metavar="HOST:PORT",
        help="serve over TCP instead of stdin/stdout",
    )
    serve.set_defaults(func=_cmd_serve)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
