"""Enumeration-as-a-service: store-backed reuse plus a serve loop.

:class:`EnumerationService` is the façade the CLI (and any embedding
caller) drives.  It owns a :class:`~repro.store.store.RunStore` and
answers enumeration requests through it:

* :meth:`EnumerationService.enumerate` — the ``peel`` procedure (the
  configured reduction applied directly, exactly what the bench
  producers run).  A repeated key returns the stored cliques with the
  stored counters and performs **zero engine recursion**.
* :meth:`EnumerationService.query` — the ``slice`` procedure through a
  memoized :class:`~repro.core.session.CliqueQuerySession`; every
  request sharing a ``(dataset, η)`` pair reuses one decomposition
  (loaded from the store's shared reduction cache when present).

:class:`ServeLoop` wraps the service in a JSON-lines request protocol
(one request object per line, one response object per line) for
``repro.store serve`` — stdin/stdout by default, a TCP socket when
asked.  ``handle_batch`` reorders a request batch so requests sharing
a reduction run consecutively (responses return in input order).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional

from repro.core.config import PMUC_PLUS_CONFIG, PivotConfig
from repro.core.pmuc import PivotEnumerator
from repro.core.session import CliqueQuerySession
from repro.store.key import (
    RunKey,
    canonical_eta,
    graph_fingerprint,
    run_key_for,
)
from repro.store.records import RunRecord, stamped_record
from repro.store.store import RunStore


@dataclass
class ServiceOutcome:
    """One answered enumeration request."""

    key: RunKey
    digest: str
    hit: bool
    record: RunRecord
    result: object  # EnumerationResult
    reduction_reused: bool = False

    def counters(self) -> Dict[str, int]:
        return self.result.stats.as_dict()


@dataclass
class _SessionEntry:
    session: CliqueQuerySession
    fingerprint: str


class EnumerationService:
    """Store-backed enumeration with reduction sharing."""

    def __init__(
        self,
        store: RunStore,
        config: PivotConfig = PMUC_PLUS_CONFIG,
    ):
        self.store = store
        self.config = config
        self._sessions: Dict[tuple, _SessionEntry] = {}

    # ------------------------------------------------------------------
    def enumerate(
        self,
        graph,
        k: int,
        eta,
        config: Optional[PivotConfig] = None,
        label: str = "enumerate",
        dataset_fingerprint: Optional[str] = None,
    ) -> ServiceOutcome:
        """Run (or replay) one direct ``peel``-procedure enumeration."""
        config = config if config is not None else self.config
        key = run_key_for(
            graph, k, eta, config,
            procedure="peel",
            dataset_fingerprint=dataset_fingerprint,
        )
        stored = self.store.get_run(key)
        if stored is not None and stored.cliques is not None:
            return ServiceOutcome(
                key=key,
                digest=stored.digest,
                hit=True,
                record=stored.record,
                result=stored.result(),
            )
        enumerator = PivotEnumerator(graph, k, eta, config)
        start = time.perf_counter()
        result = enumerator.run()
        seconds = time.perf_counter() - start
        record = stamped_record(
            label,
            seconds,
            len(result.cliques),
            result.stats.as_dict(),
            extra={"k": k, "eta": repr(eta)},
            backend=enumerator.backend_used,
            variant=enumerator.variant_used,
        )
        digest = self.store.put_run(key, record, cliques=result.cliques)
        return ServiceOutcome(
            key=key, digest=digest, hit=False, record=record, result=result
        )

    # ------------------------------------------------------------------
    def session(
        self,
        graph,
        eta,
        config: Optional[PivotConfig] = None,
        dataset_fingerprint: Optional[str] = None,
    ) -> CliqueQuerySession:
        """The memoized store-backed session for ``(graph, η, config)``.

        Requests sharing the pair share one decomposition — computed
        (or loaded from the store's reduction cache) exactly once.
        """
        config = config if config is not None else self.config
        fingerprint = (
            dataset_fingerprint
            if dataset_fingerprint is not None
            else graph_fingerprint(graph)
        )
        memo = (fingerprint, canonical_eta(eta), config)
        entry = self._sessions.get(memo)
        if entry is None:
            entry = _SessionEntry(
                session=CliqueQuerySession(
                    graph, eta, config,
                    store=self.store,
                    dataset_fingerprint=fingerprint,
                ),
                fingerprint=fingerprint,
            )
            self._sessions[memo] = entry
        return entry.session

    def query(
        self,
        graph,
        k: int,
        eta,
        config: Optional[PivotConfig] = None,
        dataset_fingerprint: Optional[str] = None,
    ) -> ServiceOutcome:
        """Run (or replay) one ``slice``-procedure query via a session."""
        session = self.session(
            graph, eta, config, dataset_fingerprint=dataset_fingerprint
        )
        key = session.query_key(k)
        hits_before = session.query_hits
        result = session.query(k)
        hit = session.query_hits > hits_before
        stored = self.store.get_run(key, with_cliques=False)
        record = (
            stored.record
            if stored is not None
            else stamped_record(
                "session", 0.0, len(result.cliques), result.stats.as_dict()
            )
        )
        return ServiceOutcome(
            key=key,
            digest=key.digest(),
            hit=hit,
            record=record,
            result=result,
            reduction_reused=session.reduction_reused,
        )


# ----------------------------------------------------------------------
# JSON-lines protocol
# ----------------------------------------------------------------------
def parse_eta(raw):
    """Accept ``0.1``, ``"0.1"`` and ``"1/10"`` (exact Fraction)."""
    if isinstance(raw, bool):
        raise ValueError("eta must be a number, got a bool")
    if isinstance(raw, str):
        if "/" in raw:
            return Fraction(raw)
        return float(raw)
    if isinstance(raw, (int, float, Fraction)):
        return raw
    raise ValueError("unsupported eta: %r" % (raw,))


@dataclass
class ServeLoop:
    """Line-oriented request handling over an :class:`EnumerationService`.

    Requests (one JSON object per line)::

        {"op": "ping"}
        {"op": "enumerate", "dataset": "communities-100", "k": 5,
         "eta": 0.1, "seed": 0, "procedure": "slice"}
        {"op": "query", "digest": "<digest or unique prefix>"}
        {"op": "batch", "requests": [...]}

    Graphs load through :func:`repro.datasets.load_dataset` and are
    cached per ``(dataset, seed, probability_model)``; enumeration
    responses carry ``digest``/``hit``/``cliques``/``counters``.
    """

    service: EnumerationService
    _graphs: Dict[tuple, tuple] = field(default_factory=dict)

    def _graph(self, name: str, seed: int, model: str):
        memo = (name, seed, model)
        if memo not in self._graphs:
            from repro.datasets import load_dataset

            graph = load_dataset(name, seed=seed, probability_model=model)
            self._graphs[memo] = (graph, graph_fingerprint(graph))
        return self._graphs[memo]

    # ------------------------------------------------------------------
    def handle(self, request: Dict[str, object]) -> Dict[str, object]:
        try:
            return self._dispatch(request)
        except Exception as error:  # protocol surface: report, don't die
            return {
                "error": "%s: %s" % (type(error).__name__, error),
                "op": request.get("op") if isinstance(request, dict) else None,
            }

    def _dispatch(self, request: Dict[str, object]) -> Dict[str, object]:
        if not isinstance(request, dict):
            raise ValueError("request must be a JSON object")
        op = request.get("op")
        if op == "ping":
            from repro.store.key import engine_salt

            return {
                "op": "ping",
                "ok": True,
                "store": self.service.store.root,
                "salt": engine_salt()[:12],
            }
        if op == "enumerate":
            return self._enumerate(request)
        if op == "query":
            return self._query(request)
        if op == "batch":
            return {
                "op": "batch",
                "responses": self.handle_batch(
                    list(request.get("requests") or [])
                ),
            }
        raise ValueError("unknown op: %r" % (op,))

    def _enumerate(self, request: Dict[str, object]) -> Dict[str, object]:
        name = request["dataset"]
        k = request["k"]
        eta = parse_eta(request["eta"])
        seed = int(request.get("seed", 0))
        model = request.get("probability_model", "exponential")
        procedure = request.get("procedure", "slice")
        if procedure not in ("slice", "peel"):
            raise ValueError("procedure must be 'slice' or 'peel'")
        graph, fingerprint = self._graph(name, seed, model)
        if procedure == "peel":
            outcome = self.service.enumerate(
                graph, k, eta,
                label="serve:%s" % name,
                dataset_fingerprint=fingerprint,
            )
        else:
            outcome = self.service.query(
                graph, k, eta, dataset_fingerprint=fingerprint
            )
        return {
            "op": "enumerate",
            "dataset": name,
            "k": k,
            "eta": outcome.key.eta,
            "procedure": outcome.key.procedure,
            "backend": outcome.key.backend,
            "digest": outcome.digest,
            "hit": outcome.hit,
            "reduction_reused": outcome.reduction_reused,
            "cliques": len(outcome.result.cliques),
            "counters": outcome.counters(),
            "seconds": outcome.record.seconds,
        }

    def _query(self, request: Dict[str, object]) -> Dict[str, object]:
        digest = str(request["digest"])
        stored = self.service.store.get_by_digest(digest, with_cliques=False)
        if stored is None:
            return {"op": "query", "digest": digest, "found": False}
        return {
            "op": "query",
            "digest": stored.digest,
            "found": True,
            "key": stored.key.as_dict(),
            "label": stored.record.label,
            "seconds": stored.record.seconds,
            "cliques": stored.record.num_cliques,
            "counters": stored.record.stats,
            "violation": stored.violation is not None,
        }

    # ------------------------------------------------------------------
    def handle_batch(
        self, requests: List[Dict[str, object]]
    ) -> List[Dict[str, object]]:
        """Answer a batch, grouping requests that share a reduction.

        Enumerate requests with the same ``(dataset, seed, model, η)``
        are handled consecutively, so the whole group pays for (at
        most) one decomposition; responses come back in input order.
        """
        def group(indexed):
            index, request = indexed
            if isinstance(request, dict) and request.get("op") == "enumerate":
                try:
                    return (
                        0,
                        str(request.get("dataset")),
                        int(request.get("seed", 0)),
                        str(request.get("probability_model", "exponential")),
                        str(request.get("eta")),
                        index,
                    )
                except (TypeError, ValueError):
                    pass
            return (1, "", 0, "", "", index)

        responses: List[Optional[Dict[str, object]]] = [None] * len(requests)
        for index, request in sorted(enumerate(requests), key=group):
            responses[index] = self.handle(request)
        return [r for r in responses if r is not None]

    def handle_line(self, line: str) -> str:
        """One protocol round: JSON request line in, response line out."""
        try:
            request = json.loads(line)
        except ValueError as error:
            return json.dumps({"error": "bad request: %s" % error})
        return json.dumps(self.handle(request), sort_keys=True, default=str)
