"""Planted-complex PPI network generator (stand-in for CORE, Exp-8).

The paper's CORE dataset is the Krogan et al. yeast protein-protein
interaction network whose edge probabilities are experimental
confidence scores, evaluated against the MIPS complex catalogue.
Neither resource is available offline, so this generator emits a
network with the same evaluation contract:

* a set of *protein complexes* (ground-truth vertex groups, possibly
  sharing proteins) whose internal interactions have high confidence;
* background noise interactions with low confidence;
* the ground truth needed to score predicted clusters by the number of
  true-positive and false-positive co-complex protein pairs, exactly
  as Table 2 does.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import FrozenSet, List, Set, Tuple

from repro.exceptions import DatasetError
from repro.uncertain.graph import UncertainGraph


@dataclass
class PPINetwork:
    """A generated PPI network plus its planted ground truth."""

    graph: UncertainGraph
    complexes: List[FrozenSet[int]] = field(default_factory=list)

    def true_pairs(self) -> Set[Tuple[int, int]]:
        """All co-complex protein pairs (the TP universe of Table 2).

        Pairs are canonicalized the same way as
        :func:`repro.applications.clustering_eval.predicted_pairs`
        (repr order) so set intersections are meaningful.
        """
        pairs: Set[Tuple[int, int]] = set()
        for complex_ in self.complexes:
            members = sorted(complex_, key=repr)
            for i, u in enumerate(members):
                for v in members[i + 1 :]:
                    pairs.add((u, v))
        return pairs


def generate_ppi_network(
    num_proteins: int = 400,
    num_complexes: int = 40,
    complex_size_range: Tuple[int, int] = (4, 9),
    intra_probability_range: Tuple[float, float] = (0.6, 0.97),
    noise_edges: int = 1600,
    noise_probability_range: Tuple[float, float] = (0.05, 0.75),
    seed: int = 0,
) -> PPINetwork:
    """Generate a PPI-like uncertain graph with planted complexes.

    Complexes are sampled with mild overlap (a protein can join up to
    two complexes, as real proteins do).  Intra-complex interactions
    are near-certain; noise interactions are weak, so η-clique mining
    at a sensible threshold recovers complexes while density-based
    clustering over-merges — the qualitative behaviour Table 2 reports.
    """
    lo, hi = complex_size_range
    if not (2 <= lo <= hi):
        raise DatasetError(f"bad complex size range {complex_size_range}")
    rng = random.Random(seed)
    graph = UncertainGraph()
    for v in range(num_proteins):
        graph.add_vertex(v)
    membership_count = [0] * num_proteins
    complexes: List[FrozenSet[int]] = []
    for _ in range(num_complexes):
        size = rng.randint(lo, hi)
        eligible = [v for v in range(num_proteins) if membership_count[v] < 2]
        if len(eligible) < size:
            break
        members = rng.sample(eligible, size)
        for v in members:
            membership_count[v] += 1
        complexes.append(frozenset(members))
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                p = rng.uniform(*intra_probability_range)
                if not graph.has_edge(u, v) or graph.probability(u, v) < p:
                    if graph.has_edge(u, v):
                        graph.remove_edge(u, v)
                    graph.add_edge(u, v, p)
    added = 0
    attempts = 0
    while added < noise_edges and attempts < 30 * noise_edges:
        attempts += 1
        u, v = rng.randrange(num_proteins), rng.randrange(num_proteins)
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v, rng.uniform(*noise_probability_range))
        added += 1
    return PPINetwork(graph=graph, complexes=complexes)
