"""The paper's running example (Figure 1).

An 8-vertex uncertain graph whose behaviour matches every worked
example in the paper:

* ``{v4, ..., v8}`` is the single maximal (1, 0.5)-clique of its
  induced subgraph, which the set-enumeration baseline explores via
  all 31 non-empty subsets (Section 1 / Section 3);
* with ``η = 0.65``, ``{v4, v5, v6, v7}`` is a maximal η-clique that
  is *not* a maximal clique of the deterministic backbone — the
  counterexample to the classic pivot rule (Section 3);
* with ``η = 0.53 < 0.9^6``, ``{v1, v2, v3, v8}`` is the maximum
  η-clique containing ``v1`` and ``{v4, ..., v8}`` the maximum
  containing ``v4`` (Example 2).

The figure itself is not machine-readable in the provided text, so the
exact probabilities are reconstructed to satisfy the constraints the
prose states (e.g. the candidate set after expanding ``v4`` in
Example 1).
"""

from __future__ import annotations

from repro.uncertain.graph import UncertainGraph

#: Edge probabilities of the reconstructed Figure-1 graph, using
#: integer vertex ids 1..8 for v1..v8.
FIGURE1_EDGES = (
    # The near-certain core of {v4..v8} (Example 1's candidate set
    # after expanding v4 is {(v3,.9),(v5,.9),(v6,1),(v7,1),(v8,.9)}).
    (4, 5, 0.9),
    (4, 6, 1.0),
    (4, 7, 1.0),
    (4, 8, 0.9),
    (5, 6, 1.0),
    (5, 7, 1.0),
    (5, 8, 0.9),
    (6, 7, 1.0),
    (6, 8, 0.9),
    (7, 8, 0.9),
    # The {v1, v2, v3, v8} side clique of Example 2.
    (1, 2, 0.95),
    (1, 3, 0.95),
    (1, 8, 0.95),
    (2, 3, 0.95),
    (2, 8, 0.95),
    (3, 8, 0.95),
    # v3 also touches v4 (it appears in Example 1's candidate set).
    (3, 4, 0.9),
)


def figure1_graph() -> UncertainGraph:
    """Return the reconstructed running-example graph of Figure 1."""
    return UncertainGraph(FIGURE1_EDGES)


def figure1_core_subgraph() -> UncertainGraph:
    """The subgraph induced by ``{v4, ..., v8}`` used in Section 1/3."""
    return figure1_graph().subgraph([4, 5, 6, 7, 8])
