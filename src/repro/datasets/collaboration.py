"""Topic-conditioned collaboration network (stand-in for DBLP, Exp-10).

The paper derives, for each research topic ``T``, an uncertain graph
``G^T`` over DBLP authors whose edge probabilities are LDA-based
likelihoods that two co-authors collaborate *on that topic*; the
task-driven team-formation query then finds maximal (k, η)-cliques
containing a query author in ``G^T``.

The stand-in plants, per topic, several tight author teams (cliques
with high topic-conditional probabilities) around named anchor
authors, embedded in a broader collaboration background whose
probabilities are low on that topic.  As in the paper, probabilities
are small products, so the case study runs with tiny η (e.g. 1e-10).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List

from repro.exceptions import DatasetError
from repro.uncertain.graph import UncertainGraph

#: Planted teams: topic -> anchor author -> team members.
_DEFAULT_TOPICS = ("databases", "information networks", "machine learning")


@dataclass
class CollaborationNetwork:
    """Per-topic uncertain graphs plus the planted team ground truth."""

    topic_graphs: Dict[str, UncertainGraph] = field(default_factory=dict)
    teams: Dict[str, Dict[str, FrozenSet[str]]] = field(default_factory=dict)
    authors: List[str] = field(default_factory=list)

    def query_anchors(self, topic: str) -> List[str]:
        """Anchor authors with a planted team for ``topic``."""
        return sorted(self.teams.get(topic, {}))


def generate_collaboration_network(
    num_authors: int = 300,
    teams_per_topic: int = 5,
    team_size_range=(4, 7),
    background_edges: int = 1200,
    anchors_in_all_topics: int = 1,
    seed: int = 0,
) -> CollaborationNetwork:
    """Generate per-topic uncertain collaboration graphs.

    ``anchors_in_all_topics`` designated authors (named
    ``"anchor-<i>"``) receive a planted team in *every* topic — they
    play the role of "Jiawei Han" in Table 3, whose teams differ per
    topic while the query vertex stays fixed.
    """
    lo, hi = team_size_range
    if not 2 <= lo <= hi:
        raise DatasetError(f"bad team size range {team_size_range}")
    rng = random.Random(seed)
    authors = [f"author-{i}" for i in range(num_authors)]
    anchors = [f"anchor-{i}" for i in range(anchors_in_all_topics)]
    everyone = authors + anchors
    network = CollaborationNetwork(authors=everyone)
    for topic_index, topic in enumerate(_DEFAULT_TOPICS):
        graph = UncertainGraph()
        for a in everyone:
            graph.add_vertex(a)
        teams: Dict[str, FrozenSet[str]] = {}
        used: set = set()
        for t in range(teams_per_topic):
            size = rng.randint(lo, hi)
            anchor = anchors[t % len(anchors)] if t < len(anchors) else None
            pool = [a for a in authors if a not in used]
            if len(pool) < size:
                break
            members = rng.sample(pool, size - (1 if anchor else 0))
            used.update(members)
            full = members + ([anchor] if anchor else [])
            key = anchor if anchor else members[0]
            teams[key] = frozenset(full)
            # Topic-conditional probabilities are LDA-like: modest per
            # edge so team products are tiny but far above the
            # background, matching the paper's eta = 1e-10 regime (a
            # 7-member team at the mean is ~0.4^21 ≈ 4e-9 >= 1e-10).
            for i, u in enumerate(full):
                for v in full[i + 1 :]:
                    p = rng.uniform(0.25, 0.55)
                    if not graph.has_edge(u, v):
                        graph.add_edge(u, v, p)
        added = attempts = 0
        while added < background_edges and attempts < 30 * background_edges:
            attempts += 1
            u, v = rng.choice(everyone), rng.choice(everyone)
            if u == v or graph.has_edge(u, v):
                continue
            graph.add_edge(u, v, rng.uniform(1e-4, 5e-3))
            added += 1
        network.topic_graphs[topic] = graph
        network.teams[topic] = teams
        del topic_index
    return network
