"""Loading real weighted graphs in the KONECT interchange format.

The paper's five semi-real datasets come from http://konect.cc/, whose
``out.*`` files are whitespace-separated edge lists with optional
weight and timestamp columns and ``%``-prefixed header lines::

    % sym weighted
    % 1420367 4641928
    1 2 5 1167609600
    ...

This loader parses that format, aggregates parallel edges (summing
weights, as the paper's interaction counts imply), drops self-loops,
and hands the result to the probability models of
:mod:`repro.datasets.probability` — so anyone with the original
downloads can run every experiment on the true datasets instead of the
stand-ins (at pure-Python speed).
"""

from __future__ import annotations

import io
import os
from typing import Dict, Tuple, Union

from repro.exceptions import DatasetError
from repro.datasets.random_graphs import EdgeWeights
from repro.datasets.registry import uncertain_from_weights
from repro.uncertain.graph import UncertainGraph

PathLike = Union[str, os.PathLike]


def parse_konect(text: str) -> EdgeWeights:
    """Parse KONECT edge-list text into an aggregated weight dict.

    Columns: ``u v [weight [timestamp]]``; a missing weight counts as
    one interaction.  Parallel edges accumulate; self-loops are
    skipped (simple-graph model).
    """
    edges: Dict[Tuple[int, int], float] = {}
    for lineno, raw in enumerate(io.StringIO(text), start=1):
        line = raw.strip()
        if not line or line.startswith(("%", "#")):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise DatasetError(f"line {lineno}: expected at least 'u v'")
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError:
            raise DatasetError(
                f"line {lineno}: vertex ids must be integers, got "
                f"{parts[0]!r} {parts[1]!r}"
            ) from None
        if u == v:
            continue
        weight = 1.0
        if len(parts) >= 3:
            try:
                weight = abs(float(parts[2]))
            except ValueError:
                raise DatasetError(
                    f"line {lineno}: weight {parts[2]!r} is not a number"
                ) from None
        key = (min(u, v), max(u, v))
        edges[key] = edges.get(key, 0.0) + weight
    return edges


def read_konect(path: PathLike) -> EdgeWeights:
    """Read a KONECT ``out.*`` file into an aggregated weight dict."""
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        return parse_konect(f.read())


def load_konect_uncertain(
    path: PathLike, probability_model: str = "exponential", seed: int = 0
) -> UncertainGraph:
    """Read a KONECT file and apply a probability model (Section 6.1).

    With the default model this reproduces exactly the paper's
    semi-real construction: ``p_e = 1 - e^{-w_e / 2}``.
    """
    return uncertain_from_weights(read_konect(path), probability_model, seed)
