"""Seeded random weighted-graph generators.

These supply the topologies onto which
:mod:`repro.datasets.probability` models are applied to form uncertain
graphs.  All generators are deterministic given a seed and return a
``{(u, v): weight}`` edge-weight dictionary over integer vertices
``0 .. n-1``.

The community generator plants overlapping dense groups — the regime
where maximal-clique enumeration is non-trivial and where the paper's
pivot pruning pays off — while the ER and preferential-attachment
generators provide sparse backgrounds mimicking communication
networks (whose edge weights count repeated interactions).
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from repro.exceptions import DatasetError

EdgeWeights = Dict[Tuple[int, int], float]


def gnm_weighted(
    n: int, m: int, seed: int = 0, max_weight: int = 10
) -> EdgeWeights:
    """Erdős–Rényi G(n, m) with geometric interaction weights."""
    _check(n >= 0 and m >= 0, "n and m must be non-negative")
    _check(m <= n * (n - 1) // 2, "m exceeds the number of vertex pairs")
    rng = random.Random(seed)
    edges: EdgeWeights = {}
    while len(edges) < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key not in edges:
            edges[key] = _interaction_weight(rng, max_weight)
    return edges


def barabasi_albert_weighted(
    n: int, attachment: int, seed: int = 0, max_weight: int = 10
) -> EdgeWeights:
    """Preferential attachment: each new vertex attaches to ``attachment``
    existing vertices chosen proportionally to degree (plus smoothing)."""
    _check(n > attachment >= 1, "need n > attachment >= 1")
    rng = random.Random(seed)
    edges: EdgeWeights = {}
    targets = list(range(attachment))
    repeated: list = list(range(attachment))
    for v in range(attachment, n):
        chosen = set()
        while len(chosen) < attachment:
            pick = rng.choice(repeated) if repeated and rng.random() < 0.9 else rng.randrange(v)
            if pick != v:
                chosen.add(pick)
        for u in chosen:
            edges[(min(u, v), max(u, v))] = _interaction_weight(rng, max_weight)
            repeated.append(u)
            repeated.append(v)
    del targets
    return edges


def planted_communities_weighted(
    n: int,
    communities: int,
    community_size: int,
    p_in: float = 0.85,
    p_out_edges: int = 0,
    seed: int = 0,
    max_weight: int = 10,
    overlap: int = 0,
) -> EdgeWeights:
    """Overlapping dense communities over a sparse background.

    ``communities`` groups of ``community_size`` vertices are chosen
    (consecutive blocks shifted by ``community_size - overlap`` so that
    adjacent groups share ``overlap`` vertices).  Pairs inside a group
    are connected with probability ``p_in`` and carry high weights;
    ``p_out_edges`` random background edges with low weights are added
    on top.
    """
    _check(communities >= 0 and community_size >= 2, "bad community shape")
    rng = random.Random(seed)
    edges: EdgeWeights = {}
    stride = max(community_size - overlap, 1)
    for c in range(communities):
        start = (c * stride) % max(n - community_size + 1, 1)
        group = list(range(start, min(start + community_size, n)))
        for i, u in enumerate(group):
            for v in group[i + 1 :]:
                if rng.random() < p_in:
                    key = (min(u, v), max(u, v))
                    # Dense-community interactions are frequent: high weight.
                    edges[key] = max(
                        edges.get(key, 0), _interaction_weight(rng, max_weight, heavy=True)
                    )
    added = 0
    attempts = 0
    while added < p_out_edges and attempts < 20 * (p_out_edges + 1):
        attempts += 1
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key not in edges:
            edges[key] = _interaction_weight(rng, max_weight)
            added += 1
    return edges


def sample_vertices(edges: EdgeWeights, fraction: float, seed: int = 0) -> EdgeWeights:
    """Vertex-induced subsample used by the scalability experiment."""
    _check(0 < fraction <= 1, "fraction must be in (0, 1]")
    rng = random.Random(seed)
    vertices = {v for e in edges for v in e}
    keep = {v for v in vertices if rng.random() < fraction}
    return {e: w for e, w in edges.items() if e[0] in keep and e[1] in keep}


def sample_edges(edges: EdgeWeights, fraction: float, seed: int = 0) -> EdgeWeights:
    """Edge subsample used by the scalability experiment."""
    _check(0 < fraction <= 1, "fraction must be in (0, 1]")
    rng = random.Random(seed)
    return {e: w for e, w in edges.items() if rng.random() < fraction}


def _interaction_weight(rng: random.Random, max_weight: int, heavy: bool = False) -> int:
    """Geometric-ish interaction count; heavy edges skew larger.

    Heavy (intra-community) edges represent pairs with many repeated
    interactions: under the exponential CDF model they map to
    probabilities around 0.95-0.995, which is what lets the planted
    communities host large η-cliques — the regime where the paper's
    datasets live and where pivot pruning matters.
    """
    if heavy:
        weight = min(6 + _geometric_tail(rng, 0.55), max_weight)
        return max(weight, 1)
    return min(1 + _geometric_tail(rng, 0.45), max_weight)


def _geometric_tail(rng: random.Random, keep_going: float) -> int:
    extra = 0
    while extra < 30 and rng.random() < keep_going:
        extra += 1
    return extra


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise DatasetError(message)
