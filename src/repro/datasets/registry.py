"""Scaled-down stand-ins for the paper's nine datasets (Table 1).

The paper evaluates on five semi-real weighted graphs from KONECT
(Enron, SuperUser, CaHepPh, Wiki-fr, Stackoverflow) and four real
uncertain graphs (CORE, NL27K, CN15K, DBLP).  None of these are
redistributable here and pure Python could not process the largest of
them anyway (63M edges), so each dataset is replaced by a *seeded
synthetic stand-in* that mimics its role in the experiments:

* the semi-real graphs become community-structured weighted graphs
  whose probabilities come from the exponential CDF model, with sizes
  scaled so the slowest algorithm finishes in seconds;
* CORE becomes a planted-complex PPI graph (see
  :mod:`repro.datasets.ppi`);
* CN15K / NL27K become labeled-community knowledge graphs (see
  :mod:`repro.datasets.knowledge_graph`);
* DBLP becomes a topic-conditioned collaboration graph (see
  :mod:`repro.datasets.collaboration`).

All relative comparisons between algorithms are preserved because every
competitor runs on the same graphs; absolute sizes and runtimes are
not comparable to the paper's, and EXPERIMENTS.md reports both.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.exceptions import DatasetError
from repro.datasets.probability import get_probability_model
from repro.datasets.random_graphs import (
    EdgeWeights,
    barabasi_albert_weighted,
    planted_communities_weighted,
)
from repro.deterministic.core import degeneracy
from repro.uncertain.graph import UncertainGraph


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one stand-in dataset."""

    name: str
    paper_name: str
    paper_vertices: int
    paper_edges: int
    description: str
    builder: Callable[[int], EdgeWeights]


def _enron(seed: int) -> EdgeWeights:
    return planted_communities_weighted(
        400, communities=26, community_size=14, overlap=4,
        p_in=0.88, p_out_edges=900, seed=seed,
    )


def _superuser(seed: int) -> EdgeWeights:
    return planted_communities_weighted(
        500, communities=24, community_size=13, overlap=3,
        p_in=0.86, p_out_edges=1400, seed=seed + 1,
    )


def _cahepph(seed: int) -> EdgeWeights:
    # Collaboration networks are unusually dense with large cliques
    # (author groups on shared papers) — the paper's CaHepPh has
    # degeneracy 410.  Use larger, heavily overlapping communities.
    return planted_communities_weighted(
        320, communities=20, community_size=18, overlap=5,
        p_in=0.93, p_out_edges=500, seed=seed + 2,
    )


def _wiki_fr(seed: int) -> EdgeWeights:
    # Communication network with a huge hub spread: preferential
    # attachment plus a few moderate communities.
    edges = barabasi_albert_weighted(700, attachment=3, seed=seed + 3)
    extra = planted_communities_weighted(
        700, communities=12, community_size=12, overlap=2,
        p_in=0.88, p_out_edges=0, seed=seed + 4,
    )
    edges.update(extra)
    return edges


def _soflow(seed: int) -> EdgeWeights:
    # The paper's largest graph: scale to the largest stand-in.
    return planted_communities_weighted(
        900, communities=40, community_size=17, overlap=5,
        p_in=0.92, p_out_edges=2600, seed=seed + 5,
    )


SEMI_REAL_SPECS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec("enron", "Enron", 87_273, 1_148_072,
                    "email interaction network stand-in", _enron),
        DatasetSpec("superuser", "SuperUser", 194_085, 1_443_339,
                    "online user communication stand-in", _superuser),
        DatasetSpec("cahepph", "CaHepPh", 28_093, 4_596_803,
                    "dense scientific collaboration stand-in", _cahepph),
        DatasetSpec("wiki-fr", "Wiki-fr", 1_420_367, 4_641_928,
                    "hub-dominated communication stand-in", _wiki_fr),
        DatasetSpec("soflow", "Soflow", 2_601_977, 63_497_050,
                    "largest communication network stand-in", _soflow),
    )
}

#: All stand-in names, semi-real first, mirroring Table 1's order.
DATASET_NAMES: Tuple[str, ...] = (
    "enron", "superuser", "cahepph", "wiki-fr", "soflow",
    "core", "nl27k", "cn15k", "dblp",
)


def load_weighted_edges(name: str, seed: int = 0) -> EdgeWeights:
    """Weighted edge set of a semi-real stand-in (before probabilities)."""
    try:
        return SEMI_REAL_SPECS[name].builder(seed)
    except KeyError:
        raise DatasetError(
            f"{name!r} is not a semi-real dataset; choose from "
            f"{tuple(SEMI_REAL_SPECS)}"
        ) from None


def load_dataset(
    name: str, seed: int = 0, probability_model: str = "exponential"
) -> UncertainGraph:
    """Build a stand-in uncertain graph by dataset name.

    Semi-real names accept any probability model from
    :mod:`repro.datasets.probability`; the real-graph stand-ins carry
    their own probabilities and ignore ``probability_model``.
    """
    if name in SEMI_REAL_SPECS:
        edges = load_weighted_edges(name, seed)
        return uncertain_from_weights(edges, probability_model, seed)
    if name == "core":
        from repro.datasets.ppi import generate_ppi_network

        return generate_ppi_network(seed=seed).graph
    if name == "cn15k":
        from repro.datasets.knowledge_graph import generate_knowledge_graph

        return generate_knowledge_graph(seed=seed, flavor="conceptnet").graph
    if name == "nl27k":
        from repro.datasets.knowledge_graph import generate_knowledge_graph

        return generate_knowledge_graph(seed=seed, flavor="nell").graph
    if name == "dblp":
        from repro.datasets.collaboration import generate_collaboration_network

        return generate_collaboration_network(seed=seed).topic_graphs["databases"]
    raise DatasetError(
        f"unknown dataset {name!r}; choose from {DATASET_NAMES}"
    )


def uncertain_from_weights(
    edges: EdgeWeights, probability_model: str = "exponential", seed: int = 0
) -> UncertainGraph:
    """Apply a probability model to a weighted edge set."""
    model = get_probability_model(probability_model)
    rng = random.Random(seed ^ 0x5EED)
    graph = UncertainGraph()
    for (u, v), w in sorted(edges.items()):
        graph.add_edge(u, v, model(w, rng))
    return graph


def dataset_statistics(name: str, seed: int = 0) -> Dict[str, object]:
    """Table-1 style row: |V|, |E|, d_max, degeneracy δ for a stand-in."""
    graph = load_dataset(name, seed)
    backbone = graph.to_deterministic()
    return {
        "dataset": name,
        "|V|": graph.num_vertices,
        "|E|": graph.num_edges,
        "d_max": graph.max_degree(),
        "delta": degeneracy(backbone),
    }


def table1_rows(seed: int = 0) -> List[Dict[str, object]]:
    """All Table-1 rows for the stand-in datasets."""
    return [dataset_statistics(name, seed) for name in DATASET_NAMES]
