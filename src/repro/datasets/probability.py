"""Edge-probability models from the paper's experimental setup.

The five KONECT graphs in the paper are *weighted*; they become
uncertain graphs by mapping each edge weight ``w`` to a probability.
Section 6.1 uses the exponential CDF ``1 - e^{-w/2}``; Exp-5 (Fig. 8)
additionally studies uniform, geometric and normal models.  Every model
here is a deterministic function of ``(weight, rng)`` so graphs are
reproducible from a seed.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict

from repro.exceptions import ParameterError

#: Probabilities are clamped below by this value so they stay in (0, 1]
#: as the uncertain-graph model requires.
MIN_PROBABILITY = 1e-6

WeightModel = Callable[[float, random.Random], float]


def exponential_probability(weight: float, rng: random.Random) -> float:
    """The paper's default: ``f(w) = 1 - e^{-w/2}`` (Section 6.1)."""
    return _clamp(1.0 - math.exp(-weight / 2.0))


def uniform_probability(weight: float, rng: random.Random) -> float:
    """Exp-5 uniform model: a value drawn uniformly from [0.5, 1]."""
    return _clamp(rng.uniform(0.5, 1.0))


def geometric_probability(weight: float, rng: random.Random, p: float = 0.2) -> float:
    """Exp-5 geometric model.

    The paper writes ``f(w) = Σ_{i=1}^{w} (1-p)^w p`` with ``p = 0.2``;
    read as the geometric CDF ``1 - (1-p)^w`` (the probability that at
    least one of ``w`` independent trials succeeds), which is the
    standard interpretation and is monotone in the weight.
    """
    return _clamp(1.0 - (1.0 - p) ** max(weight, 0.0))


def normal_probability(
    weight: float, rng: random.Random, mu: float = 5.0, sigma: float = 8.0
) -> float:
    """Exp-5 normal model: ``f(w) = (1 + erf((w - μ) / σ)) / 2``."""
    return _clamp(0.5 * (1.0 + math.erf((weight - mu) / sigma)))


PROBABILITY_MODELS: Dict[str, WeightModel] = {
    "exponential": exponential_probability,
    "uniform": uniform_probability,
    "geometric": geometric_probability,
    "normal": normal_probability,
}


def get_probability_model(name: str) -> WeightModel:
    """Look up a probability model by name."""
    try:
        return PROBABILITY_MODELS[name]
    except KeyError:
        raise ParameterError(
            f"unknown probability model {name!r}; expected one of "
            f"{tuple(PROBABILITY_MODELS)}"
        ) from None


def _clamp(p: float) -> float:
    if p >= 1.0:
        return 1.0
    if p < MIN_PROBABILITY:
        return MIN_PROBABILITY
    return p
