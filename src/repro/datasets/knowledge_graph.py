"""Uncertain knowledge-graph generator (stand-in for CN15K/NL27K, Exp-9).

CN15K and NL27K are uncertain knowledge graphs whose edges carry
relation-confidence scores; the paper's community-search case study
queries an entity ("plant", "mlb") and compares the compactness and
topical purity of the structures returned by maximal (k, η)-cliques
versus UKCore/UKTruss.

The stand-in plants *labeled topic communities* — each a set of
entities about one topic, densely connected with high confidence —
plus a layer of cross-topic relations with mixed confidence.  Each
topic has one designated *query entity* connected to every community
member, so "search around the query" has a well-defined right answer
and purity is measurable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List

from repro.exceptions import DatasetError
from repro.uncertain.graph import UncertainGraph

#: Topic vocabularies for the two flavors, echoing the paper's queries.
_TOPICS = {
    "conceptnet": ["plant", "animal", "vehicle", "emotion", "music", "food"],
    "nell": ["mlb", "nfl", "city", "company", "university", "politician"],
}


@dataclass
class KnowledgeGraph:
    """Generated uncertain KG with its planted topical ground truth."""

    graph: UncertainGraph
    topic_of: Dict[str, str] = field(default_factory=dict)
    communities: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    queries: Dict[str, str] = field(default_factory=dict)

    def purity(self, vertices, topic: str) -> float:
        """Fraction of ``vertices`` whose planted topic is ``topic``."""
        members = list(vertices)
        if not members:
            return 0.0
        hits = sum(1 for v in members if self.topic_of.get(v) == topic)
        return hits / len(members)


def generate_knowledge_graph(
    flavor: str = "conceptnet",
    entities_per_topic: int = 0,
    intra_degree: int = 8,
    cross_edges: int = 0,
    seed: int = 0,
) -> KnowledgeGraph:
    """Generate a labeled uncertain knowledge graph.

    Entities are strings ``"<topic>:<i>"``; each topic additionally has
    a hub query entity named after the topic itself (e.g. ``"plant"``)
    linked to all its community members with high confidence.
    """
    if flavor not in _TOPICS:
        raise DatasetError(
            f"unknown flavor {flavor!r}; choose from {tuple(_TOPICS)}"
        )
    # Flavor-specific default shapes: the paper's CN15K is denser and
    # smaller than NL27K.  Zero means "use the flavor default".
    if not entities_per_topic:
        entities_per_topic = 30 if flavor == "conceptnet" else 40
    if not cross_edges:
        cross_edges = 350 if flavor == "conceptnet" else 520
    rng = random.Random(seed if flavor == "conceptnet" else seed + 101)
    graph = UncertainGraph()
    topic_of: Dict[str, str] = {}
    communities: Dict[str, FrozenSet[str]] = {}
    queries: Dict[str, str] = {}
    all_entities: List[str] = []
    for topic in _TOPICS[flavor]:
        members = [f"{topic}:{i}" for i in range(entities_per_topic)]
        hub = topic
        queries[topic] = hub
        topic_of[hub] = topic
        for name in members:
            topic_of[name] = topic
        communities[topic] = frozenset(members + [hub])
        all_entities.extend(members)
        # Hub relates to every member with high confidence.
        for name in members:
            graph.add_edge(hub, name, rng.uniform(0.7, 0.99))
        # Members form a dense, high-confidence neighborhood.
        for i, u in enumerate(members):
            picks = rng.sample(
                members[:i] + members[i + 1 :],
                min(intra_degree, len(members) - 1),
            )
            for v in picks:
                if not graph.has_edge(u, v):
                    graph.add_edge(u, v, rng.uniform(0.55, 0.95))
    added = 0
    attempts = 0
    while added < cross_edges and attempts < 30 * cross_edges:
        attempts += 1
        u, v = rng.choice(all_entities), rng.choice(all_entities)
        if u == v or graph.has_edge(u, v) or topic_of[u] == topic_of[v]:
            continue
        graph.add_edge(u, v, rng.uniform(0.1, 0.6))
        added += 1
    return KnowledgeGraph(
        graph=graph, topic_of=topic_of, communities=communities, queries=queries
    )
