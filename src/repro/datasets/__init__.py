"""Seeded synthetic datasets standing in for the paper's nine graphs."""

from repro.datasets.probability import (
    MIN_PROBABILITY,
    PROBABILITY_MODELS,
    exponential_probability,
    geometric_probability,
    get_probability_model,
    normal_probability,
    uniform_probability,
)
from repro.datasets.random_graphs import (
    barabasi_albert_weighted,
    gnm_weighted,
    planted_communities_weighted,
    sample_edges,
    sample_vertices,
)
from repro.datasets.registry import (
    DATASET_NAMES,
    SEMI_REAL_SPECS,
    dataset_statistics,
    load_dataset,
    load_weighted_edges,
    table1_rows,
    uncertain_from_weights,
)
from repro.datasets.konect import (
    load_konect_uncertain,
    parse_konect,
    read_konect,
)
from repro.datasets.figure1 import (
    FIGURE1_EDGES,
    figure1_core_subgraph,
    figure1_graph,
)
from repro.datasets.ppi import PPINetwork, generate_ppi_network
from repro.datasets.knowledge_graph import (
    KnowledgeGraph,
    generate_knowledge_graph,
)
from repro.datasets.collaboration import (
    CollaborationNetwork,
    generate_collaboration_network,
)

__all__ = [
    "MIN_PROBABILITY",
    "PROBABILITY_MODELS",
    "exponential_probability",
    "geometric_probability",
    "normal_probability",
    "uniform_probability",
    "get_probability_model",
    "gnm_weighted",
    "barabasi_albert_weighted",
    "planted_communities_weighted",
    "sample_edges",
    "sample_vertices",
    "DATASET_NAMES",
    "SEMI_REAL_SPECS",
    "dataset_statistics",
    "load_dataset",
    "load_weighted_edges",
    "table1_rows",
    "uncertain_from_weights",
    "load_konect_uncertain",
    "parse_konect",
    "read_konect",
    "FIGURE1_EDGES",
    "figure1_graph",
    "figure1_core_subgraph",
    "PPINetwork",
    "generate_ppi_network",
    "KnowledgeGraph",
    "generate_knowledge_graph",
    "CollaborationNetwork",
    "generate_collaboration_network",
]
